// Quickstart: build two circuits, check their equivalence with the
// simulation-first flow of Burgholzer & Wille (DAC'20).
//
//   $ ./quickstart

#include "ec/flow.hpp"
#include "ir/quantum_computation.hpp"

#include <iostream>

using namespace qsimec;

int main() {
  // G: prepare a GHZ state
  ir::QuantumComputation g(3, "ghz");
  g.h(2);
  g.cx(2, 1);
  g.cx(1, 0);

  // G': an alternative realization (different CNOT chain)
  ir::QuantumComputation gPrime(3, "ghz_alt");
  gPrime.h(2);
  gPrime.cx(2, 1);
  gPrime.cx(2, 0);

  // G~: a buggy realization (one CNOT flipped)
  ir::QuantumComputation gBuggy(3, "ghz_buggy");
  gBuggy.h(2);
  gBuggy.cx(1, 2);
  gBuggy.cx(1, 0);

  ec::FlowConfiguration config;
  config.simulation.maxSimulations = 10; // the paper's r = 10
  config.simulation.seed = 1;
  const ec::EquivalenceCheckingFlow flow(config);

  std::cout << "G vs G'  : ";
  const auto ok = flow.run(g, gPrime);
  std::cout << toString(ok.equivalence) << " (" << ok.simulations
            << " simulations, " << ok.totalSeconds() << "s)\n";

  std::cout << "G vs G~  : ";
  const auto bad = flow.run(g, gBuggy);
  std::cout << toString(bad.equivalence);
  if (bad.counterexample) {
    std::cout << " — counterexample input |" << bad.counterexample->input
              << ">, output fidelity " << bad.counterexample->fidelity;
  }
  std::cout << " (" << bad.simulations << " simulation(s))\n";
  return 0;
}
