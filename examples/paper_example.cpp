// The paper's worked example (Figs. 1-2, Examples 5 and 6).
//
// G is the 3-qubit circuit of Fig. 1b; G' the mapped variant with SWAPs
// (Fig. 2); G~' the buggy variant of Example 6 where the last SWAP is
// applied to the wrong qubit pair. The program prints the system matrices
// (U of Fig. 1c, U~' of Fig. 1d), shows that *every* column differs, and
// runs the proposed flow on both pairs.

#include "dd/export.hpp"
#include "ec/flow.hpp"
#include "sim/dd_simulator.hpp"

#include <iostream>

using namespace qsimec;

namespace {

// Fig. 1b: qubit q2 is the top wire of the figure.
ir::QuantumComputation circuitG() {
  ir::QuantumComputation qc(3, "G (Fig. 1b)");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.cx(2, 1);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

// Fig. 2: the same computation after "mapping" with SWAP insertions.
ir::QuantumComputation circuitGPrime(bool buggy) {
  ir::QuantumComputation qc(3, buggy ? "G~' (Ex. 6)" : "G' (Fig. 2)");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.swap(1, 2);
  qc.cx(1, 2);
  // Example 6: the bug — the mapping tool applies the restoring SWAP to
  // (q0, q1) instead of (q1, q2)
  if (buggy) {
    qc.swap(0, 1);
  } else {
    qc.swap(1, 2);
  }
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

void printFunctionality(const ir::QuantumComputation& qc) {
  dd::Package pkg(qc.qubits());
  const auto u = sim::buildFunctionality(qc, pkg);
  std::cout << "\nSystem matrix of " << qc.name() << " (|G| = " << qc.size()
            << "):\n";
  dd::printMatrix(pkg, u, std::cout);
}

} // namespace

int main() {
  const auto g = circuitG();
  const auto gPrime = circuitGPrime(false);
  const auto gBuggy = circuitGPrime(true);

  printFunctionality(g);
  printFunctionality(gBuggy);

  // Example 6: U and U~' differ in every column -> any single simulation
  // with a basis state is a counterexample.
  {
    dd::Package pkg(3);
    std::cout << "\nColumns in which U and U~' differ: ";
    for (std::uint64_t i = 0; i < 8; ++i) {
      const auto a = sim::simulate(g, pkg.makeBasisState(i), pkg);
      pkg.incRef(a);
      const auto b = sim::simulate(gBuggy, pkg.makeBasisState(i), pkg);
      if (std::abs(1.0 - pkg.fidelity(a, b)) > 1e-9) {
        std::cout << i << " ";
      }
      pkg.decRef(a);
    }
    std::cout << "(all 8 of 8 -> detection probability 1 per simulation)\n";
  }

  ec::FlowConfiguration config;
  config.simulation.seed = 3;
  const ec::EquivalenceCheckingFlow flow(config);

  const auto ok = flow.run(g, gPrime);
  std::cout << "\nG vs G'  (Example 5): " << toString(ok.equivalence) << "\n";

  const auto bad = flow.run(g, gBuggy);
  std::cout << "G vs G~' (Example 6): " << toString(bad.equivalence)
            << " after " << bad.simulations << " simulation(s)";
  if (bad.counterexample) {
    std::cout << ", counterexample |"
              << dd::basisLabel(bad.counterexample->input, 3) << ">";
  }
  std::cout << "\n";
  return 0;
}
