// The RevLib pipeline of the paper's Table I, end to end:
// define a reversible function -> synthesize a compact MCT circuit G ->
// decompose it into an elementary-gate circuit G' (orders of magnitude more
// gates) -> verify the step with the simulation-first flow. Also exercises
// the .real and OpenQASM writers.
//
//   $ ./revlib_flow [bits]

#include "ec/flow.hpp"
#include "gen/revlib_like.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "synth/transformation_based.hpp"
#include "transform/decomposition.hpp"

#include <iostream>

using namespace qsimec;

int main(int argc, char** argv) {
  const std::size_t bits = argc > 1 ? std::stoul(argv[1]) : 5;

  // 1. the function: hidden weighted bit
  const auto tt = synth::TruthTable::hiddenWeightedBit(bits);
  std::cout << "hwb" << bits << ": permutation of " << tt.size()
            << " basis states\n";

  // 2. synthesis -> compact MCT circuit G
  synth::SynthesisStats stats;
  const auto g = synth::synthesize(tt, "hwb" + std::to_string(bits), &stats);
  std::cout << "synthesized G: " << g.size() << " MCT gates (max "
            << stats.maxControls << " controls)\n";

  // 3. decomposition -> elementary circuit G' (the paper's huge |G'|)
  const auto gPrime = tf::decompose(g);
  std::cout << "decomposed G': " << gPrime.size()
            << " elementary gates on " << gPrime.qubits() << " qubits ("
            << (gPrime.size() / std::max<std::size_t>(g.size(), 1))
            << "x growth)\n";

  // 4. verify the decomposition with the flow
  ec::FlowConfiguration config;
  config.simulation.seed = 21;
  config.complete.timeoutSeconds = 30;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result =
      flow.run(tf::padQubits(g, gPrime.qubits()), gPrime);
  std::cout << "verification: " << toString(result.equivalence) << " ("
            << result.simulations << " sims " << result.simulationSeconds
            << "s, complete " << result.completeSeconds << "s)\n";

  // 5. interchange formats
  std::cout << "\nG in RevLib .real format (first lines):\n";
  const std::string real = io::toRealString(g);
  std::cout << real.substr(0, std::min<std::size_t>(real.size(), 400))
            << "...\n";

  std::cout << "\nG' in OpenQASM 2.0 (first lines):\n";
  const std::string qasm = io::toQasmString(gPrime);
  std::cout << qasm.substr(0, std::min<std::size_t>(qasm.size(), 400))
            << "...\n";
  return 0;
}
