# Empty compiler generated dependencies file for ablation_r_sweep.
# This may be replaced when dependencies are built.
