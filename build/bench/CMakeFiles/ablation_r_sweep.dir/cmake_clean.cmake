file(REMOVE_RECURSE
  "CMakeFiles/ablation_r_sweep.dir/ablation_r_sweep.cpp.o"
  "CMakeFiles/ablation_r_sweep.dir/ablation_r_sweep.cpp.o.d"
  "ablation_r_sweep"
  "ablation_r_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_r_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
