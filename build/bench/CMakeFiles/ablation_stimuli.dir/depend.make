# Empty dependencies file for ablation_stimuli.
# This may be replaced when dependencies are built.
