file(REMOVE_RECURSE
  "CMakeFiles/ablation_stimuli.dir/ablation_stimuli.cpp.o"
  "CMakeFiles/ablation_stimuli.dir/ablation_stimuli.cpp.o.d"
  "ablation_stimuli"
  "ablation_stimuli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stimuli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
