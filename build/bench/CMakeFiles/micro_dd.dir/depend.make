# Empty dependencies file for micro_dd.
# This may be replaced when dependencies are built.
