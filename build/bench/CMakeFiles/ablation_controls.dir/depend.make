# Empty dependencies file for ablation_controls.
# This may be replaced when dependencies are built.
