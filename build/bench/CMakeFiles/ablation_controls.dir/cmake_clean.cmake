file(REMOVE_RECURSE
  "CMakeFiles/ablation_controls.dir/ablation_controls.cpp.o"
  "CMakeFiles/ablation_controls.dir/ablation_controls.cpp.o.d"
  "ablation_controls"
  "ablation_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
