# Empty compiler generated dependencies file for ablation_mappers.
# This may be replaced when dependencies are built.
