file(REMOVE_RECURSE
  "CMakeFiles/ablation_mappers.dir/ablation_mappers.cpp.o"
  "CMakeFiles/ablation_mappers.dir/ablation_mappers.cpp.o.d"
  "ablation_mappers"
  "ablation_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
