# Empty compiler generated dependencies file for table1b_equivalent.
# This may be replaced when dependencies are built.
