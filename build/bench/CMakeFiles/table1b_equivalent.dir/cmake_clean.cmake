file(REMOVE_RECURSE
  "CMakeFiles/table1b_equivalent.dir/table1b_equivalent.cpp.o"
  "CMakeFiles/table1b_equivalent.dir/table1b_equivalent.cpp.o.d"
  "table1b_equivalent"
  "table1b_equivalent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1b_equivalent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
