file(REMOVE_RECURSE
  "CMakeFiles/table1a_nonequivalent.dir/table1a_nonequivalent.cpp.o"
  "CMakeFiles/table1a_nonequivalent.dir/table1a_nonequivalent.cpp.o.d"
  "table1a_nonequivalent"
  "table1a_nonequivalent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1a_nonequivalent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
