# Empty dependencies file for table1a_nonequivalent.
# This may be replaced when dependencies are built.
