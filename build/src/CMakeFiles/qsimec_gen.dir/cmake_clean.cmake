file(REMOVE_RECURSE
  "CMakeFiles/qsimec_gen.dir/gen/algorithms.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/algorithms.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/chemistry.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/chemistry.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/grover.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/grover.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/qft.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/qft.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/random_circuits.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/random_circuits.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/revlib_like.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/revlib_like.cpp.o.d"
  "CMakeFiles/qsimec_gen.dir/gen/supremacy.cpp.o"
  "CMakeFiles/qsimec_gen.dir/gen/supremacy.cpp.o.d"
  "libqsimec_gen.a"
  "libqsimec_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
