file(REMOVE_RECURSE
  "libqsimec_gen.a"
)
