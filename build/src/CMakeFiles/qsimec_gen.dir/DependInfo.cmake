
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/algorithms.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/algorithms.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/algorithms.cpp.o.d"
  "/root/repo/src/gen/chemistry.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/chemistry.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/chemistry.cpp.o.d"
  "/root/repo/src/gen/grover.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/grover.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/grover.cpp.o.d"
  "/root/repo/src/gen/qft.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/qft.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/qft.cpp.o.d"
  "/root/repo/src/gen/random_circuits.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/random_circuits.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/random_circuits.cpp.o.d"
  "/root/repo/src/gen/revlib_like.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/revlib_like.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/revlib_like.cpp.o.d"
  "/root/repo/src/gen/supremacy.cpp" "src/CMakeFiles/qsimec_gen.dir/gen/supremacy.cpp.o" "gcc" "src/CMakeFiles/qsimec_gen.dir/gen/supremacy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
