# Empty dependencies file for qsimec_gen.
# This may be replaced when dependencies are built.
