# Empty dependencies file for qsimec_dd.
# This may be replaced when dependencies are built.
