file(REMOVE_RECURSE
  "libqsimec_dd.a"
)
