
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/complex.cpp" "src/CMakeFiles/qsimec_dd.dir/dd/complex.cpp.o" "gcc" "src/CMakeFiles/qsimec_dd.dir/dd/complex.cpp.o.d"
  "/root/repo/src/dd/export.cpp" "src/CMakeFiles/qsimec_dd.dir/dd/export.cpp.o" "gcc" "src/CMakeFiles/qsimec_dd.dir/dd/export.cpp.o.d"
  "/root/repo/src/dd/package.cpp" "src/CMakeFiles/qsimec_dd.dir/dd/package.cpp.o" "gcc" "src/CMakeFiles/qsimec_dd.dir/dd/package.cpp.o.d"
  "/root/repo/src/dd/real_table.cpp" "src/CMakeFiles/qsimec_dd.dir/dd/real_table.cpp.o" "gcc" "src/CMakeFiles/qsimec_dd.dir/dd/real_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
