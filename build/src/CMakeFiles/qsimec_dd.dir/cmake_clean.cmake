file(REMOVE_RECURSE
  "CMakeFiles/qsimec_dd.dir/dd/complex.cpp.o"
  "CMakeFiles/qsimec_dd.dir/dd/complex.cpp.o.d"
  "CMakeFiles/qsimec_dd.dir/dd/export.cpp.o"
  "CMakeFiles/qsimec_dd.dir/dd/export.cpp.o.d"
  "CMakeFiles/qsimec_dd.dir/dd/package.cpp.o"
  "CMakeFiles/qsimec_dd.dir/dd/package.cpp.o.d"
  "CMakeFiles/qsimec_dd.dir/dd/real_table.cpp.o"
  "CMakeFiles/qsimec_dd.dir/dd/real_table.cpp.o.d"
  "libqsimec_dd.a"
  "libqsimec_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
