file(REMOVE_RECURSE
  "CMakeFiles/qsimec_ir.dir/ir/operation.cpp.o"
  "CMakeFiles/qsimec_ir.dir/ir/operation.cpp.o.d"
  "CMakeFiles/qsimec_ir.dir/ir/quantum_computation.cpp.o"
  "CMakeFiles/qsimec_ir.dir/ir/quantum_computation.cpp.o.d"
  "libqsimec_ir.a"
  "libqsimec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
