file(REMOVE_RECURSE
  "libqsimec_ir.a"
)
