# Empty dependencies file for qsimec_ir.
# This may be replaced when dependencies are built.
