file(REMOVE_RECURSE
  "CMakeFiles/qsimec_synth.dir/synth/transformation_based.cpp.o"
  "CMakeFiles/qsimec_synth.dir/synth/transformation_based.cpp.o.d"
  "CMakeFiles/qsimec_synth.dir/synth/truth_table.cpp.o"
  "CMakeFiles/qsimec_synth.dir/synth/truth_table.cpp.o.d"
  "libqsimec_synth.a"
  "libqsimec_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
