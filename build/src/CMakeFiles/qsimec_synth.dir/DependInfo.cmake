
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/transformation_based.cpp" "src/CMakeFiles/qsimec_synth.dir/synth/transformation_based.cpp.o" "gcc" "src/CMakeFiles/qsimec_synth.dir/synth/transformation_based.cpp.o.d"
  "/root/repo/src/synth/truth_table.cpp" "src/CMakeFiles/qsimec_synth.dir/synth/truth_table.cpp.o" "gcc" "src/CMakeFiles/qsimec_synth.dir/synth/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
