file(REMOVE_RECURSE
  "libqsimec_synth.a"
)
