# Empty dependencies file for qsimec_synth.
# This may be replaced when dependencies are built.
