file(REMOVE_RECURSE
  "libqsimec_io.a"
)
