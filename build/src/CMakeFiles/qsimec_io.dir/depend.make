# Empty dependencies file for qsimec_io.
# This may be replaced when dependencies are built.
