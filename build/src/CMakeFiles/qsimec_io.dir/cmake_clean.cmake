file(REMOVE_RECURSE
  "CMakeFiles/qsimec_io.dir/io/qasm.cpp.o"
  "CMakeFiles/qsimec_io.dir/io/qasm.cpp.o.d"
  "CMakeFiles/qsimec_io.dir/io/real.cpp.o"
  "CMakeFiles/qsimec_io.dir/io/real.cpp.o.d"
  "libqsimec_io.a"
  "libqsimec_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
