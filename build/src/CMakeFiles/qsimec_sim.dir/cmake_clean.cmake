file(REMOVE_RECURSE
  "CMakeFiles/qsimec_sim.dir/sim/dd_simulator.cpp.o"
  "CMakeFiles/qsimec_sim.dir/sim/dd_simulator.cpp.o.d"
  "CMakeFiles/qsimec_sim.dir/sim/dense_simulator.cpp.o"
  "CMakeFiles/qsimec_sim.dir/sim/dense_simulator.cpp.o.d"
  "CMakeFiles/qsimec_sim.dir/sim/observables.cpp.o"
  "CMakeFiles/qsimec_sim.dir/sim/observables.cpp.o.d"
  "CMakeFiles/qsimec_sim.dir/sim/stabilizer_simulator.cpp.o"
  "CMakeFiles/qsimec_sim.dir/sim/stabilizer_simulator.cpp.o.d"
  "libqsimec_sim.a"
  "libqsimec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
