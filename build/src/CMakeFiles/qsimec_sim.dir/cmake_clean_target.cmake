file(REMOVE_RECURSE
  "libqsimec_sim.a"
)
