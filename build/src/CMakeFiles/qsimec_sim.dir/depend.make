# Empty dependencies file for qsimec_sim.
# This may be replaced when dependencies are built.
