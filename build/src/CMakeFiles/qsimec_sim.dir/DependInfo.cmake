
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dd_simulator.cpp" "src/CMakeFiles/qsimec_sim.dir/sim/dd_simulator.cpp.o" "gcc" "src/CMakeFiles/qsimec_sim.dir/sim/dd_simulator.cpp.o.d"
  "/root/repo/src/sim/dense_simulator.cpp" "src/CMakeFiles/qsimec_sim.dir/sim/dense_simulator.cpp.o" "gcc" "src/CMakeFiles/qsimec_sim.dir/sim/dense_simulator.cpp.o.d"
  "/root/repo/src/sim/observables.cpp" "src/CMakeFiles/qsimec_sim.dir/sim/observables.cpp.o" "gcc" "src/CMakeFiles/qsimec_sim.dir/sim/observables.cpp.o.d"
  "/root/repo/src/sim/stabilizer_simulator.cpp" "src/CMakeFiles/qsimec_sim.dir/sim/stabilizer_simulator.cpp.o" "gcc" "src/CMakeFiles/qsimec_sim.dir/sim/stabilizer_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
