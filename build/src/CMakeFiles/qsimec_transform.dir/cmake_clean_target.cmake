file(REMOVE_RECURSE
  "libqsimec_transform.a"
)
