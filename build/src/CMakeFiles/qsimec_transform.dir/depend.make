# Empty dependencies file for qsimec_transform.
# This may be replaced when dependencies are built.
