file(REMOVE_RECURSE
  "CMakeFiles/qsimec_transform.dir/transform/decomposition.cpp.o"
  "CMakeFiles/qsimec_transform.dir/transform/decomposition.cpp.o.d"
  "CMakeFiles/qsimec_transform.dir/transform/error_injector.cpp.o"
  "CMakeFiles/qsimec_transform.dir/transform/error_injector.cpp.o.d"
  "CMakeFiles/qsimec_transform.dir/transform/mapper.cpp.o"
  "CMakeFiles/qsimec_transform.dir/transform/mapper.cpp.o.d"
  "CMakeFiles/qsimec_transform.dir/transform/optimizer.cpp.o"
  "CMakeFiles/qsimec_transform.dir/transform/optimizer.cpp.o.d"
  "libqsimec_transform.a"
  "libqsimec_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
