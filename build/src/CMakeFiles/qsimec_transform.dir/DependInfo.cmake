
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/decomposition.cpp" "src/CMakeFiles/qsimec_transform.dir/transform/decomposition.cpp.o" "gcc" "src/CMakeFiles/qsimec_transform.dir/transform/decomposition.cpp.o.d"
  "/root/repo/src/transform/error_injector.cpp" "src/CMakeFiles/qsimec_transform.dir/transform/error_injector.cpp.o" "gcc" "src/CMakeFiles/qsimec_transform.dir/transform/error_injector.cpp.o.d"
  "/root/repo/src/transform/mapper.cpp" "src/CMakeFiles/qsimec_transform.dir/transform/mapper.cpp.o" "gcc" "src/CMakeFiles/qsimec_transform.dir/transform/mapper.cpp.o.d"
  "/root/repo/src/transform/optimizer.cpp" "src/CMakeFiles/qsimec_transform.dir/transform/optimizer.cpp.o" "gcc" "src/CMakeFiles/qsimec_transform.dir/transform/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
