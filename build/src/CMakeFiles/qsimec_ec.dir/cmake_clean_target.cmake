file(REMOVE_RECURSE
  "libqsimec_ec.a"
)
