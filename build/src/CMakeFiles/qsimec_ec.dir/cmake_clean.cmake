file(REMOVE_RECURSE
  "CMakeFiles/qsimec_ec.dir/ec/alternating_checker.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/alternating_checker.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/construction_checker.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/construction_checker.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/diff_analysis.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/diff_analysis.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/error_localization.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/error_localization.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/flow.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/flow.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/rewriting_checker.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/rewriting_checker.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/serialize.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/serialize.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/simulation_checker.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/simulation_checker.cpp.o.d"
  "CMakeFiles/qsimec_ec.dir/ec/stimuli.cpp.o"
  "CMakeFiles/qsimec_ec.dir/ec/stimuli.cpp.o.d"
  "libqsimec_ec.a"
  "libqsimec_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
