
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/alternating_checker.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/alternating_checker.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/alternating_checker.cpp.o.d"
  "/root/repo/src/ec/construction_checker.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/construction_checker.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/construction_checker.cpp.o.d"
  "/root/repo/src/ec/diff_analysis.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/diff_analysis.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/diff_analysis.cpp.o.d"
  "/root/repo/src/ec/error_localization.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/error_localization.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/error_localization.cpp.o.d"
  "/root/repo/src/ec/flow.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/flow.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/flow.cpp.o.d"
  "/root/repo/src/ec/rewriting_checker.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/rewriting_checker.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/rewriting_checker.cpp.o.d"
  "/root/repo/src/ec/serialize.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/serialize.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/serialize.cpp.o.d"
  "/root/repo/src/ec/simulation_checker.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/simulation_checker.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/simulation_checker.cpp.o.d"
  "/root/repo/src/ec/stimuli.cpp" "src/CMakeFiles/qsimec_ec.dir/ec/stimuli.cpp.o" "gcc" "src/CMakeFiles/qsimec_ec.dir/ec/stimuli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
