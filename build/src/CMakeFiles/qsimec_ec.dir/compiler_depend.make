# Empty compiler generated dependencies file for qsimec_ec.
# This may be replaced when dependencies are built.
