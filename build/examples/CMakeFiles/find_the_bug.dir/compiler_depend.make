# Empty compiler generated dependencies file for find_the_bug.
# This may be replaced when dependencies are built.
