file(REMOVE_RECURSE
  "CMakeFiles/find_the_bug.dir/find_the_bug.cpp.o"
  "CMakeFiles/find_the_bug.dir/find_the_bug.cpp.o.d"
  "find_the_bug"
  "find_the_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_the_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
