file(REMOVE_RECURSE
  "CMakeFiles/error_localization.dir/error_localization.cpp.o"
  "CMakeFiles/error_localization.dir/error_localization.cpp.o.d"
  "error_localization"
  "error_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
