# Empty compiler generated dependencies file for error_localization.
# This may be replaced when dependencies are built.
