# Empty dependencies file for revlib_flow.
# This may be replaced when dependencies are built.
