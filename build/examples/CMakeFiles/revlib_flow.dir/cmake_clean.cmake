file(REMOVE_RECURSE
  "CMakeFiles/revlib_flow.dir/revlib_flow.cpp.o"
  "CMakeFiles/revlib_flow.dir/revlib_flow.cpp.o.d"
  "revlib_flow"
  "revlib_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revlib_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
