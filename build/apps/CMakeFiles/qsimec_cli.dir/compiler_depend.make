# Empty compiler generated dependencies file for qsimec_cli.
# This may be replaced when dependencies are built.
