file(REMOVE_RECURSE
  "CMakeFiles/qsimec_cli.dir/qsimec.cpp.o"
  "CMakeFiles/qsimec_cli.dir/qsimec.cpp.o.d"
  "qsimec"
  "qsimec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsimec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
