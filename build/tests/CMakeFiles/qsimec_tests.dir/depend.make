# Empty dependencies file for qsimec_tests.
# This may be replaced when dependencies are built.
