
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_dd_basic.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_dd_basic.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_dd_basic.cpp.o.d"
  "/root/repo/tests/test_dd_edge_cases.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_dd_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_dd_edge_cases.cpp.o.d"
  "/root/repo/tests/test_dd_properties.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_dd_properties.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_dd_properties.cpp.o.d"
  "/root/repo/tests/test_ec.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_ec.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_ec.cpp.o.d"
  "/root/repo/tests/test_flow_sweep.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_flow_sweep.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_flow_sweep.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_io_files.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_io_files.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_io_files.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_observables.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_observables.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_observables.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stabilizer.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_stabilizer.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_stabilizer.cpp.o.d"
  "/root/repo/tests/test_stimuli.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_stimuli.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_stimuli.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/qsimec_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/qsimec_tests.dir/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsimec_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsimec_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
