// Observability tests: metrics registry semantics, span nesting and Chrome
// trace export, the null-sink fast path, DD package profiling counters, and
// the flow's per-stage metrics rollup.

#include "dd/package.hpp"
#include "dd/stats.hpp"
#include "ec/flow.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/qft.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/dd_simulator.hpp"
#include "util/json_lint.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>

using namespace qsimec;

namespace {

/// G: the 3-qubit example circuit from Fig. 1b of the paper.
ir::QuantumComputation paperCircuitG() {
  ir::QuantumComputation qc(3, "fig1b");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.cx(2, 1);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

/// A mapped variant: same functionality with extra SWAP pairs inserted.
ir::QuantumComputation paperCircuitGPrime() {
  ir::QuantumComputation qc(3, "fig2");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.swap(1, 2);
  qc.cx(1, 2);
  qc.swap(1, 2);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

/// G' with one wrong gate: a counterexample exists on (almost) every input.
ir::QuantumComputation paperCircuitBroken() {
  ir::QuantumComputation qc = paperCircuitGPrime();
  qc.x(0);
  return qc;
}

} // namespace

TEST(Metrics, RegistryRecordsValues) {
  obs::MetricsRegistry registry;
  registry.add("a.count");
  registry.add("a.count", 4);
  registry.set("g.value", 2.5);
  registry.set("g.value", 3.5); // last write wins
  registry.setMax("g.peak", 7.0);
  registry.setMax("g.peak", 5.0); // smaller: ignored
  registry.observe("h.obs", 1.0);
  registry.observe("h.obs", 3.0);

  const obs::MetricsSnapshot& s = registry.snapshot();
  EXPECT_EQ(s.counters.at("a.count"), 5U);
  EXPECT_DOUBLE_EQ(s.gauges.at("g.value"), 3.5);
  EXPECT_DOUBLE_EQ(s.gauges.at("g.peak"), 7.0);
  EXPECT_EQ(s.histograms.at("h.obs").count, 2U);
  EXPECT_DOUBLE_EQ(s.histograms.at("h.obs").sum, 4.0);
  EXPECT_DOUBLE_EQ(s.histograms.at("h.obs").min, 1.0);
  EXPECT_DOUBLE_EQ(s.histograms.at("h.obs").max, 3.0);
  EXPECT_DOUBLE_EQ(s.histograms.at("h.obs").mean(), 2.0);

  registry.clear();
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Metrics, MergeSemantics) {
  obs::MetricsSnapshot a;
  a.counters["c"] = 2;
  a.gauges["g"] = 1.0;
  a.histograms["h"] = {2, 10.0, 4.0, 6.0};

  obs::MetricsSnapshot b;
  b.counters["c"] = 3;
  b.gauges["g"] = 9.0;
  b.histograms["h"] = {1, 1.0, 1.0, 1.0};

  a.merge(b);
  EXPECT_EQ(a.counters.at("c"), 5U);          // counters add
  EXPECT_DOUBLE_EQ(a.gauges.at("g"), 9.0);    // gauges overwrite
  EXPECT_EQ(a.histograms.at("h").count, 3U);  // histograms pool
  EXPECT_DOUBLE_EQ(a.histograms.at("h").sum, 11.0);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").min, 1.0);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").max, 6.0);
}

TEST(Metrics, SnapshotJsonIsValid) {
  obs::MetricsSnapshot s;
  s.counters["flow.runs"] = 3;
  s.gauges["total.seconds"] = 0.25;
  s.histograms["sim.fidelity"] = {2, 2.0, 1.0, 1.0};

  const std::string json = obs::toJson(s);
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"flow.runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);

  EXPECT_TRUE(util::isValidJson(obs::toJson(obs::MetricsSnapshot{})));
}

TEST(Metrics, HistogramBucketsAreExactAndMergeable) {
  obs::HistogramSnapshot h;
  // bucket boundaries are powers of two: 1.0 sits exactly on a boundary
  // (inclusive upper bound), 1.5 in the next bucket up
  h.observe(1.0);
  h.observe(1.5);
  h.observe(1.5);
  EXPECT_EQ(h.buckets[obs::HistogramSnapshot::bucketIndex(1.0)], 1U);
  EXPECT_EQ(h.buckets[obs::HistogramSnapshot::bucketIndex(1.5)], 2U);
  EXPECT_LT(obs::HistogramSnapshot::bucketIndex(1.0),
            obs::HistogramSnapshot::bucketIndex(1.5));
  EXPECT_DOUBLE_EQ(
      obs::HistogramSnapshot::bucketUpperBound(
          obs::HistogramSnapshot::bucketIndex(1.0)),
      1.0);
  // zero and negatives land in the first bucket; huge values in the +Inf
  // overflow bucket
  EXPECT_EQ(obs::HistogramSnapshot::bucketIndex(0.0), 0U);
  EXPECT_EQ(obs::HistogramSnapshot::bucketIndex(-3.0), 0U);
  EXPECT_EQ(obs::HistogramSnapshot::bucketIndex(1e300),
            obs::HistogramSnapshot::kBucketCount - 1);

  obs::HistogramSnapshot other;
  other.observe(1.5);
  h.mergeFrom(other);
  EXPECT_EQ(h.count, 4U);
  EXPECT_EQ(h.buckets[obs::HistogramSnapshot::bucketIndex(1.5)], 3U);

  std::uint64_t bucketSum = 0;
  for (const std::uint64_t b : h.buckets) {
    bucketSum += b;
  }
  EXPECT_EQ(bucketSum, h.count); // merge is lossless
}

TEST(Metrics, HistogramPercentilesClampToObservedRange) {
  obs::HistogramSnapshot h;
  for (int i = 0; i < 90; ++i) {
    h.observe(0.010); // bucket upper bound ~0.0156
  }
  for (int i = 0; i < 10; ++i) {
    h.observe(10.0);
  }
  // p50 falls in the dense low bucket: bucket-resolution answer, clamped
  // below by min
  const double p50 = h.percentile(0.50);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p50, 0.016);
  // p99 reaches the sparse top bucket and clamps to the observed max
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
  EXPECT_GE(h.percentile(0.0), h.min);
  EXPECT_LE(h.percentile(0.0), 0.016);
  EXPECT_DOUBLE_EQ(obs::HistogramSnapshot{}.percentile(0.5), 0.0);

  const std::string json = obs::toJson(h);
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
}

TEST(JsonLint, AcceptsAndRejects) {
  EXPECT_TRUE(util::isValidJson("{}"));
  EXPECT_TRUE(util::isValidJson(R"({"a":[1,2.5e-3,"x\n",true,null]})"));
  EXPECT_TRUE(util::isValidJson(" 42 "));
  EXPECT_FALSE(util::isValidJson(""));
  EXPECT_FALSE(util::isValidJson("{"));
  EXPECT_FALSE(util::isValidJson("{'a':1}"));
  EXPECT_FALSE(util::isValidJson("{\"a\":1,}"));
  EXPECT_FALSE(util::isValidJson("01"));
  EXPECT_FALSE(util::isValidJson("{\"a\":1} trailing"));
}

TEST(Tracer, SpansNestAndContain) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan outer(&tracer, "outer", "test");
    outer.arg("label", std::string_view("root"));
    {
      obs::ScopedSpan inner(&tracer, "inner", "test");
      inner.arg("index", std::uint64_t{7});
    }
    obs::ScopedSpan sibling(&tracer, "sibling", "test");
  }
  ASSERT_EQ(tracer.events().size(), 3U);
  EXPECT_EQ(tracer.openSpans(), 0);

  const obs::SpanEvent& outer = tracer.events()[0];
  const obs::SpanEvent& inner = tracer.events()[1];
  const obs::SpanEvent& sibling = tracer.events()[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(sibling.depth, 1);

  // begin-order monotonicity and interval containment
  EXPECT_LE(outer.tsMicros, inner.tsMicros);
  EXPECT_LE(inner.tsMicros, sibling.tsMicros);
  EXPECT_GE(outer.durMicros, 0.0);
  EXPECT_GE(inner.durMicros, 0.0);
  EXPECT_LE(inner.tsMicros + inner.durMicros,
            outer.tsMicros + outer.durMicros);
  EXPECT_LE(sibling.tsMicros + sibling.durMicros,
            outer.tsMicros + outer.durMicros);

  ASSERT_EQ(inner.args.size(), 1U);
  EXPECT_EQ(inner.args[0].key, "index");
  EXPECT_EQ(inner.args[0].value, "7");
  EXPECT_FALSE(inner.args[0].quoted);
}

TEST(Tracer, ChromeTraceJsonIsValid) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "flow", "flow");
    span.arg("outcome", std::string_view("he said \"equivalent\""));
    obs::ScopedSpan child(&tracer, "stage", "stage");
  }
  const std::string json = tracer.toChromeTraceJson();
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"equivalent\\\""), std::string::npos);
}

TEST(Tracer, OpenSpansExportWithNonNegativeDuration) {
  obs::Tracer tracer;
  const std::size_t index = tracer.beginSpan("open", "test");
  EXPECT_EQ(tracer.openSpans(), 1);
  const std::string json = tracer.toChromeTraceJson();
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
  tracer.endSpan(index);
  EXPECT_EQ(tracer.openSpans(), 0);
}

TEST(Tracer, MidFlightMultiThreadExportIsValidWithStableTids) {
  // Satellite of the observability PR: exporting while spans are still open
  // on several threads must yield valid JSON, and each thread must keep one
  // stable tid across all of its spans.
  obs::Tracer tracer;
  const std::size_t mainSpan = tracer.beginSpan("main.open", "test");

  std::string midFlightJson;
  {
    std::jthread worker([&tracer, &midFlightJson] {
      obs::ScopedSpan first(&tracer, "worker.first", "test");
      {
        obs::ScopedSpan nested(&tracer, "worker.nested", "test");
      }
      // export while this thread's span and the main thread's span are open
      midFlightJson = tracer.toChromeTraceJson();
    });
  }
  {
    obs::ScopedSpan second(&tracer, "main.second", "test");
  }
  tracer.endSpan(mainSpan);

  EXPECT_TRUE(util::isValidJson(midFlightJson)) << midFlightJson;
  EXPECT_EQ(midFlightJson.find("\"dur\":-"), std::string::npos);
  EXPECT_TRUE(util::isValidJson(tracer.toChromeTraceJson()));
  EXPECT_EQ(tracer.openSpans(), 0);

  // tids: one per thread, stable across that thread's spans
  int mainTid = -1;
  int workerTid = -1;
  for (const obs::SpanEvent& event : tracer.events()) {
    if (event.name.rfind("main.", 0) == 0) {
      EXPECT_TRUE(mainTid == -1 || mainTid == event.tid);
      mainTid = event.tid;
    } else {
      EXPECT_TRUE(workerTid == -1 || workerTid == event.tid);
      workerTid = event.tid;
    }
  }
  EXPECT_NE(mainTid, -1);
  EXPECT_NE(workerTid, -1);
  EXPECT_NE(mainTid, workerTid);
  // the worker's spans nest on the worker's own lane
  for (const obs::SpanEvent& event : tracer.events()) {
    if (event.name == "worker.first") {
      EXPECT_EQ(event.depth, 0);
    }
    if (event.name == "worker.nested") {
      EXPECT_EQ(event.depth, 1);
    }
  }
}

TEST(Tracer, CounterEventsExportAsChromeCounterTrack) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, "flow", "flow");
    tracer.counter("dd.nodes_live", 128.0);
    tracer.counter("dd.nodes_live", 256.5);
  }
  tracer.counter("dd.nodes_live",
                 std::numeric_limits<double>::quiet_NaN()); // dropped

  ASSERT_EQ(tracer.counterEvents().size(), 2U);
  EXPECT_EQ(tracer.counterEvents()[0].name, "dd.nodes_live");
  EXPECT_DOUBLE_EQ(tracer.counterEvents()[0].value, 128.0);
  EXPECT_LE(tracer.counterEvents()[0].tsMicros,
            tracer.counterEvents()[1].tsMicros);

  const std::string json = tracer.toChromeTraceJson();
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":256.5}"), std::string::npos);
}

TEST(Tracer, NullSinkRecordsNothing) {
  // a null tracer must be safe for every ScopedSpan member
  obs::ScopedSpan span(nullptr, "noop", "test");
  span.arg("k", std::string_view("v"));
  span.arg("d", 1.5);
  span.arg("u", std::uint64_t{2});

  // a null context must be safe for every helper
  const obs::Context context;
  EXPECT_FALSE(context.active());
  context.count("c");
  context.gauge("g", 1.0);
  context.observe("h", 1.0);

  // and an instrumented checker run without sinks must behave identically
  const ec::SimulationChecker checker;
  const auto result = checker.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, ec::Equivalence::ProbablyEquivalent);
}

TEST(PackageStats, ProfilesSimulation) {
  const ir::QuantumComputation qc = gen::qft(6);
  dd::Package pkg(qc.qubits());
  const auto out = sim::simulate(qc, pkg.makeBasisState(5), pkg);
  ASSERT_NE(out.p, nullptr);

  const dd::PackageStats stats = pkg.stats();
  EXPECT_GT(stats.vNodesPeakLive, 0U);
  EXPECT_GE(stats.vNodesPeakLive, stats.vNodesLive);
  EXPECT_GE(stats.vNodesAllocated, stats.vNodesPeakLive);
  EXPECT_GT(stats.peakNodesLive(), 0U);
  EXPECT_GT(stats.vUnique.lookups, 0U);
  EXPECT_GT(stats.multMV.lookups, 0U);
  EXPECT_GE(stats.multMV.hitRate(), 0.0);
  EXPECT_LE(stats.multMV.hitRate(), 1.0);

  obs::MetricsSnapshot snapshot;
  dd::appendPackageStats(snapshot, "sim.dd", stats);
  EXPECT_EQ(snapshot.counters.at("sim.dd.v_nodes_peak_live"),
            stats.vNodesPeakLive);
  EXPECT_EQ(snapshot.counters.at("sim.dd.unique_lookups"),
            stats.vUnique.lookups + stats.mUnique.lookups);
  EXPECT_TRUE(snapshot.gauges.contains("sim.dd.compute_hit_rate"));
}

TEST(PackageStats, GarbageCollectionIsTimedAndTraced) {
  obs::Tracer tracer;
  dd::Package pkg(3);
  pkg.setTracer(&tracer);
  // churn through enough transient vectors to trigger a forced collection
  const ir::QuantumComputation qc = paperCircuitG();
  for (int round = 0; round < 4; ++round) {
    const auto out = sim::simulate(qc, pkg.makeBasisState(0), pkg);
    ASSERT_NE(out.p, nullptr);
    pkg.garbageCollect(/*force=*/true);
  }
  pkg.setTracer(nullptr);

  const dd::PackageStats stats = pkg.stats();
  EXPECT_GE(stats.gcRuns, 4U);
  EXPECT_GE(stats.gcSeconds, 0.0);
  EXPECT_GE(stats.gcSeconds, stats.gcMaxPauseSeconds);

  bool sawGcSpan = false;
  for (const obs::SpanEvent& event : tracer.events()) {
    sawGcSpan = sawGcSpan || event.name == "dd.gc";
  }
  EXPECT_TRUE(sawGcSpan);
}

// The FlowMetrics tests pin the general simulation + DD path: the paper
// circuits are Clifford-only, so the prescreen (which would route them to
// the stabilizer tier) is disabled here.
ec::FlowConfiguration generalFlowConfig() {
  ec::FlowConfiguration config;
  config.prescreen.enabled = false;
  return config;
}

TEST(FlowMetrics, RollupOnEquivalentPair) {
  const ec::EquivalenceCheckingFlow flow(generalFlowConfig());
  const ec::FlowResult result =
      flow.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);

  const obs::MetricsSnapshot& m = result.metrics;
  EXPECT_EQ(m.counters.at("simulation.runs"), result.simulations);
  EXPECT_GT(m.counters.at("simulation.dd.apply_ops"), 0U);
  EXPECT_GT(m.counters.at("complete.dd.apply_ops"), 0U);
  EXPECT_GT(m.counters.at("simulation.dd.nodes_peak_live"), 0U);
  EXPECT_DOUBLE_EQ(m.gauges.at("total.seconds"), result.totalSeconds());
  EXPECT_DOUBLE_EQ(m.gauges.at("preflight.seconds"), result.preflightSeconds);
  // preflight ran (validateInputs defaults to true) and is part of the total
  EXPECT_GT(result.preflightSeconds, 0.0);
  EXPECT_GE(result.totalSeconds(), result.preflightSeconds);
}

TEST(FlowMetrics, EarlyExitCounterexampleStillReportsSimulationCost) {
  const ec::EquivalenceCheckingFlow flow(generalFlowConfig());
  const ec::FlowResult result =
      flow.run(paperCircuitG(), paperCircuitBroken());
  ASSERT_EQ(result.equivalence, ec::Equivalence::NotEquivalent);
  ASSERT_TRUE(result.counterexample.has_value());

  // regression: the early counterexample exit must not drop the stage
  // timings or the metrics rollup
  EXPECT_GT(result.simulationSeconds, 0.0);
  EXPECT_GE(result.totalSeconds(), result.simulationSeconds);
  EXPECT_EQ(result.metrics.counters.at("flow.counterexample"), 1U);
  EXPECT_EQ(result.metrics.counters.at("simulation.runs"),
            result.simulations);
  EXPECT_GT(result.metrics.counters.at("simulation.dd.apply_ops"), 0U);
  // the complete check never ran
  EXPECT_FALSE(result.metrics.counters.contains("complete.dd.apply_ops"));
}

TEST(FlowMetrics, ContextSinksReceiveSpansAndMetrics) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  const obs::Context context{&tracer, &registry};

  const ec::EquivalenceCheckingFlow flow(generalFlowConfig());
  const ec::FlowResult result =
      flow.run(paperCircuitG(), paperCircuitGPrime(), context);
  EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);

  // the registry mirrors the result's rollup (plus per-run observations)
  EXPECT_EQ(registry.snapshot().counters.at("simulation.runs"),
            result.simulations);
  EXPECT_EQ(
      registry.snapshot().histograms.at("simulation.fidelity_deviation").count,
      result.simulations);

  ASSERT_FALSE(tracer.events().empty());
  const obs::SpanEvent& root = tracer.events()[0];
  EXPECT_EQ(root.name, "flow");
  EXPECT_EQ(root.depth, 0);
  std::size_t stimulusSpans = 0;
  bool sawSimChecker = false;
  bool sawCompleteChecker = false;
  for (const obs::SpanEvent& event : tracer.events()) {
    stimulusSpans += event.name == "sim.stimulus" ? 1U : 0U;
    sawSimChecker = sawSimChecker || event.name == "checker.simulation";
    sawCompleteChecker =
        sawCompleteChecker || event.name == "checker.alternating";
    // every span is contained in the root flow span
    EXPECT_GE(event.tsMicros, root.tsMicros);
    EXPECT_LE(event.tsMicros + event.durMicros,
              root.tsMicros + root.durMicros + 1e-3);
  }
  EXPECT_EQ(stimulusSpans, result.simulations);
  EXPECT_TRUE(sawSimChecker);
  EXPECT_TRUE(sawCompleteChecker);
}
