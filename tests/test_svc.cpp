// Tests of the batch checking service (src/svc): circuit fingerprinting
// (format- and order-stability, parameter quantization), the VerdictCache
// (LRU, persistence, corruption tolerance, config-digest keying), and the
// BatchScheduler (manifest parsing, determinism across thread counts, warm
// cache dispatching zero checker work).

#include "ec/flow.hpp"
#include "gen/qft.hpp"
#include "gen/revlib_like.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "obs/metrics.hpp"
#include "svc/batch.hpp"
#include "svc/fingerprint.hpp"
#include "svc/verdict_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace qsimec;
namespace fs = std::filesystem;

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, StableAcrossFormatsAndNames) {
  // the same reversible circuit, written out as OpenQASM and as RevLib
  // .real, must fingerprint identically after parse-back — the name and
  // the on-disk syntax are not part of the identity
  ir::QuantumComputation qc(3, "original");
  qc.x(0);
  qc.cx(1, 0);
  qc.ccx(2, 1, 0);
  qc.x(2);

  const auto viaQasm = io::parseQasmString(io::toQasmString(qc), "as_qasm");
  const auto viaReal = io::parseRealString(io::toRealString(qc), "as_real");

  const svc::Fingerprint direct = svc::fingerprint(qc);
  EXPECT_EQ(direct, svc::fingerprint(viaQasm));
  EXPECT_EQ(direct, svc::fingerprint(viaReal));
}

TEST(Fingerprint, ParameterQuantizationEpsilon) {
  const auto withAngle = [](double theta) {
    ir::QuantumComputation qc(1, "rot");
    qc.rz(theta, 0);
    return svc::fingerprint(qc);
  };
  // below the documented epsilon: same quantization bucket, same identity
  EXPECT_EQ(withAngle(0.25), withAngle(0.25 + 4e-10));
  // past it: a genuinely different rotation
  EXPECT_NE(withAngle(0.25), withAngle(0.25 + 2e-9));
}

TEST(Fingerprint, OrderAndRoleSensitive) {
  // same gate multiset, different order
  ir::QuantumComputation ab(2, "ab");
  ab.x(0);
  ab.x(1);
  ir::QuantumComputation ba(2, "ba");
  ba.x(1);
  ba.x(0);
  EXPECT_NE(svc::fingerprint(ab), svc::fingerprint(ba));

  // same qubit pair, control and target swapped
  ir::QuantumComputation c01(2, "c01");
  c01.cx(0, 1);
  ir::QuantumComputation c10(2, "c10");
  c10.cx(1, 0);
  EXPECT_NE(svc::fingerprint(c01), svc::fingerprint(c10));

  // identical gates on a wider register are a different circuit
  ir::QuantumComputation narrow(2, "narrow");
  narrow.x(0);
  ir::QuantumComputation wide(3, "wide");
  wide.x(0);
  EXPECT_NE(svc::fingerprint(narrow), svc::fingerprint(wide));
}

TEST(Fingerprint, HexRoundTrip) {
  ir::QuantumComputation qc(2, "rt");
  qc.h(0);
  qc.cx(0, 1);
  const svc::Fingerprint fp = svc::fingerprint(qc);
  const auto parsed = svc::parseFingerprint(fp.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);

  EXPECT_FALSE(svc::parseFingerprint("not-hex").has_value());
  EXPECT_FALSE(svc::parseFingerprint("abc").has_value());
}

TEST(Fingerprint, ConfigDigestCoversVerdictRelevantFieldsOnly) {
  ec::FlowConfiguration base;
  const std::uint64_t digest = svc::configDigest(base);

  // verdict-relevant: more stimuli can find a counterexample a shorter run
  // would miss
  ec::FlowConfiguration moreSims = base;
  moreSims.simulation.maxSimulations += 1;
  EXPECT_NE(digest, svc::configDigest(moreSims));

  ec::FlowConfiguration otherSeed = base;
  otherSeed.simulation.seed += 1;
  EXPECT_NE(digest, svc::configDigest(otherSeed));

  // performance-only: the determinism contract says the verdict is
  // identical for every thread count, and a proof survives any timeout
  ec::FlowConfiguration moreThreads = base;
  moreThreads.simulation.numThreads = 7;
  EXPECT_EQ(digest, svc::configDigest(moreThreads));

  ec::FlowConfiguration otherTimeout = base;
  otherTimeout.complete.timeoutSeconds = 123.0;
  EXPECT_EQ(digest, svc::configDigest(otherTimeout));
}

// --------------------------------------------------------------- VerdictCache

svc::PairKey keyFor(std::uint64_t a, std::uint64_t b,
                    std::uint64_t config = 1) {
  return svc::PairKey{svc::Fingerprint{a, a}, svc::Fingerprint{b, b}, config};
}

TEST(VerdictCache, LruEvictionRefreshesOnLookup) {
  svc::VerdictCache cache(2);
  const svc::CachedVerdict eq{ec::Equivalence::Equivalent, std::nullopt};
  cache.store(keyFor(1, 1), eq);
  cache.store(keyFor(2, 2), eq);
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value()); // 1 is now freshest
  cache.store(keyFor(3, 3), eq);                       // evicts 2, not 1

  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(cache.evictions(), 1U);
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(keyFor(2, 2)).has_value());
  EXPECT_TRUE(cache.lookup(keyFor(3, 3)).has_value());
}

TEST(VerdictCache, OnlyProofsAreCacheable) {
  svc::VerdictCache cache;
  cache.store(keyFor(1, 1),
              {ec::Equivalence::ProbablyEquivalent, std::nullopt});
  cache.store(keyFor(2, 2), {ec::Equivalence::NoInformation, std::nullopt});
  cache.store(keyFor(3, 3), {ec::Equivalence::InvalidInput, std::nullopt});
  EXPECT_EQ(cache.size(), 0U);

  cache.store(keyFor(4, 4),
              {ec::Equivalence::EquivalentUpToGlobalPhase, std::nullopt});
  cache.store(keyFor(5, 5),
              {ec::Equivalence::NotEquivalent,
               ec::Counterexample{3, 0.0, ec::StimuliKind::RandomProduct}});
  EXPECT_EQ(cache.size(), 2U);
}

TEST(VerdictCache, PersistenceRoundTrip) {
  std::ostringstream log;
  svc::VerdictCache cache;
  cache.persistTo(&log);
  cache.store(keyFor(1, 2, 7), {ec::Equivalence::Equivalent, std::nullopt});
  cache.store(keyFor(3, 4, 7),
              {ec::Equivalence::NotEquivalent,
               ec::Counterexample{21, 0.25, ec::StimuliKind::RandomStabilizer}});
  cache.persistTo(nullptr);

  svc::VerdictCache reloaded;
  std::istringstream replay(log.str());
  EXPECT_EQ(reloaded.load(replay), 2U);
  EXPECT_EQ(reloaded.corruptLines(), 0U);

  const auto eq = reloaded.lookup(keyFor(1, 2, 7));
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->equivalence, ec::Equivalence::Equivalent);
  EXPECT_FALSE(eq->counterexample.has_value());

  const auto ne = reloaded.lookup(keyFor(3, 4, 7));
  ASSERT_TRUE(ne.has_value());
  EXPECT_EQ(ne->equivalence, ec::Equivalence::NotEquivalent);
  ASSERT_TRUE(ne->counterexample.has_value());
  EXPECT_EQ(ne->counterexample->input, 21U);
  EXPECT_DOUBLE_EQ(ne->counterexample->fidelity, 0.25);
  EXPECT_EQ(ne->counterexample->stimuli, ec::StimuliKind::RandomStabilizer);
}

TEST(VerdictCache, CorruptLinesAreSkippedAndCounted) {
  const std::string good = svc::VerdictCache::toJsonLine(
      keyFor(9, 9), {ec::Equivalence::Equivalent, std::nullopt});
  std::istringstream replay("this is not json\n" + good +
                            "\n{\"schema\":\"wrong-schema\"}\n"
                            "{\"schema\":\"qsimec-cache-v1\",\"g\":\"zz\"}\n"
                            "\n" // blank: skipped, not corrupt
                            + good.substr(0, good.size() / 2) + "\n");
  svc::VerdictCache cache;
  EXPECT_EQ(cache.load(replay), 1U);
  EXPECT_EQ(cache.corruptLines(), 4U);
  EXPECT_TRUE(cache.lookup(keyFor(9, 9)).has_value());
}

TEST(VerdictCache, ConfigDigestMismatchMisses) {
  svc::VerdictCache cache;
  cache.store(keyFor(1, 2, /*config=*/10),
              {ec::Equivalence::Equivalent, std::nullopt});
  EXPECT_FALSE(cache.lookup(keyFor(1, 2, /*config=*/11)).has_value());
  EXPECT_TRUE(cache.lookup(keyFor(1, 2, /*config=*/10)).has_value());
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(VerdictCache, CheapestProofIsEvictedFirst) {
  // recency would evict the 300 s proof (stored first = coldest); the
  // cost-aware policy keeps it and drops the 0.01 s one instead
  svc::VerdictCache cache(2);
  cache.store(keyFor(1, 1), {ec::Equivalence::Equivalent, std::nullopt, 300.0});
  cache.store(keyFor(2, 2), {ec::Equivalence::Equivalent, std::nullopt, 0.01});
  cache.store(keyFor(3, 3), {ec::Equivalence::Equivalent, std::nullopt, 5.0});

  EXPECT_EQ(cache.evictions(), 1U);
  EXPECT_DOUBLE_EQ(cache.evictedSeconds(), 0.01);
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(keyFor(2, 2)).has_value());
  EXPECT_TRUE(cache.lookup(keyFor(3, 3)).has_value());

  // the next eviction takes the cheapest resident (the 5 s proof) to make
  // room for the newcomer, and the counter accumulates
  cache.store(keyFor(4, 4), {ec::Equivalence::Equivalent, std::nullopt, 1.0});
  EXPECT_EQ(cache.evictions(), 2U);
  EXPECT_DOUBLE_EQ(cache.evictedSeconds(), 0.01 + 5.0);
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(keyFor(3, 3)).has_value());
  EXPECT_TRUE(cache.lookup(keyFor(4, 4)).has_value());
}

TEST(VerdictCache, EqualCostsFallBackToLru) {
  // all costs unknown (0): the policy must degrade to exactly the old LRU
  // behaviour, lookup refresh included
  svc::VerdictCache cache(2);
  const svc::CachedVerdict eq{ec::Equivalence::Equivalent, std::nullopt};
  cache.store(keyFor(1, 1), eq);
  cache.store(keyFor(2, 2), eq);
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value());
  cache.store(keyFor(3, 3), eq); // evicts 2, not the freshly-touched 1
  EXPECT_TRUE(cache.lookup(keyFor(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(keyFor(2, 2)).has_value());
}

TEST(VerdictCache, ProofSecondsSurviveAVersionedRoundTrip) {
  std::ostringstream log;
  svc::VerdictCache cache;
  cache.persistTo(&log);
  cache.store(keyFor(1, 2, 7),
              {ec::Equivalence::Equivalent, std::nullopt, 12.5});
  cache.persistTo(nullptr);
  EXPECT_NE(log.str().find("\"schema\":\"qsimec-cache-v2\""),
            std::string::npos);
  EXPECT_NE(log.str().find("\"seconds\":12.5"), std::string::npos);

  svc::VerdictCache reloaded(2);
  std::istringstream replay(log.str());
  EXPECT_EQ(reloaded.load(replay), 1U);
  // the reloaded cost still protects the entry from a cheap newcomer
  reloaded.store(keyFor(3, 3), {ec::Equivalence::Equivalent, std::nullopt});
  reloaded.store(keyFor(4, 4), {ec::Equivalence::Equivalent, std::nullopt});
  EXPECT_TRUE(reloaded.lookup(keyFor(1, 2, 7)).has_value());
}

TEST(VerdictCache, V1LinesLoadWithZeroCost) {
  // a pre-cost cache file: same fields minus "seconds", v1 schema tag
  const std::string v1 =
      "{\"schema\":\"qsimec-cache-v1\""
      ",\"g\":\"00000000000000090000000000000009\""
      ",\"gp\":\"00000000000000090000000000000009\""
      ",\"config\":\"00000000000000000000000000000001\""
      ",\"verdict\":\"equivalent\",\"counterexample\":null}";
  svc::VerdictCache cache;
  std::istringstream replay(v1 + "\n");
  EXPECT_EQ(cache.load(replay), 1U);
  EXPECT_EQ(cache.corruptLines(), 0U);
  const auto entry = cache.lookup(keyFor(9, 9));
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->proofSeconds, 0.0); // cost unknown = cheapest
}

// ------------------------------------------------------------ BatchScheduler

class BatchTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("qsimec_svc_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);

    // three equivalent pairs (proof via the complete check), one
    // non-equivalent pair (proof via counterexample): all four verdicts
    // are cacheable, so a warm rerun needs zero checker work
    write("qft_a.qasm", gen::qft(3));
    write("qft_b.qasm", gen::qftAlternative(3));
    write("adder.real", gen::adderCircuit(4));
    write("inc.real", gen::incrementCircuit(4));
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& name, const ir::QuantumComputation& qc) {
    std::ofstream os(dir_ / name);
    if (name.ends_with(".real")) {
      io::writeReal(qc, os);
    } else {
      io::writeQasm(qc, os);
    }
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] std::string manifestText() const {
    return "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
           path("qft_b.qasm") + "\"}\n"
           "{\"g\": \"" + path("adder.real") + "\", \"gp\": \"" +
           path("adder.real") + "\"}\n"
           "\n" // blank lines are allowed
           "{\"g\": \"" + path("adder.real") + "\", \"gp\": \"" +
           path("inc.real") + "\", \"sims\": 16}\n"
           "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
           path("qft_a.qasm") + "\"}\n";
  }

  [[nodiscard]] svc::BatchManifest manifest() const {
    std::istringstream is(manifestText());
    ec::FlowConfiguration base;
    base.complete.timeoutSeconds = 60.0;
    return svc::parseManifest(is, base);
  }

  // Aggregate-initializing BatchOptions with a subset of fields trips
  // -Wmissing-field-initializers under -Werror builds; spell it out once.
  static svc::BatchOptions options(unsigned threads,
                                   svc::VerdictCache* cache = nullptr) {
    svc::BatchOptions o;
    o.threads = threads;
    o.cache = cache;
    return o;
  }

  static std::string redactedLines(const svc::BatchResult& result) {
    std::string out;
    for (const auto& outcome : result.outcomes) {
      out += svc::toJsonLine(outcome, {.redact = true});
      out += '\n';
    }
    out += svc::toJsonLine(result.summary, {.redact = true});
    out += '\n';
    return out;
  }

  fs::path dir_;
};

TEST_F(BatchTest, ManifestParsing) {
  const svc::BatchManifest m = manifest();
  ASSERT_EQ(m.pairs.size(), 4U);
  EXPECT_EQ(m.pairs[0].gPath, path("qft_a.qasm"));
  EXPECT_EQ(m.pairs[2].config.simulation.maxSimulations, 16U);
  EXPECT_EQ(m.pairs[0].config.simulation.maxSimulations, 10U); // base
  EXPECT_DOUBLE_EQ(m.pairs[1].config.complete.timeoutSeconds, 60.0);
}

TEST_F(BatchTest, ManifestErrorsNameTheLine) {
  ec::FlowConfiguration base;
  {
    std::istringstream is("{\"g\": \"a\", \"gp\": \"b\"}\nnot json\n");
    EXPECT_THROW(
        {
          try {
            (void)svc::parseManifest(is, base);
          } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("line 2"),
                      std::string::npos)
                << e.what();
            throw;
          }
        },
        std::runtime_error);
  }
  {
    std::istringstream is("{\"g\": \"a\", \"gp\": \"b\", \"bogus\": 1}\n");
    EXPECT_THROW((void)svc::parseManifest(is, base), std::runtime_error);
  }
  {
    std::istringstream is("{\"g\": \"a\"}\n");
    EXPECT_THROW((void)svc::parseManifest(is, base), std::runtime_error);
  }
}

TEST_F(BatchTest, VerdictsMatchIndividualChecksInManifestOrder) {
  const svc::BatchManifest m = manifest();
  svc::BatchScheduler scheduler(options(2));
  const svc::BatchResult result = scheduler.run(m);

  ASSERT_EQ(result.outcomes.size(), 4U);
  for (std::size_t i = 0; i < m.pairs.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].index, i);
    const auto loadFile = [](const std::string& p) {
      return p.ends_with(".real") ? io::parseRealFile(p)
                                  : io::parseQasmFile(p);
    };
    const ec::FlowResult solo =
        ec::EquivalenceCheckingFlow(m.pairs[i].config)
            .run(loadFile(m.pairs[i].gPath), loadFile(m.pairs[i].gPrimePath));
    EXPECT_EQ(result.outcomes[i].equivalence, solo.equivalence)
        << "pair " << i;
    EXPECT_EQ(result.outcomes[i].counterexample.has_value(),
              solo.counterexample.has_value());
    if (result.outcomes[i].counterexample && solo.counterexample) {
      EXPECT_EQ(result.outcomes[i].counterexample->input,
                solo.counterexample->input);
    }
  }
}

TEST_F(BatchTest, RedactedSerializationIsIdenticalAcrossThreadCounts) {
  const svc::BatchManifest m = manifest();
  std::string reference;
  for (const unsigned threads : {1U, 2U, 8U}) {
    svc::BatchScheduler scheduler(options(threads));
    const std::string lines = redactedLines(scheduler.run(m));
    if (reference.empty()) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference) << "threads=" << threads;
    }
  }
}

TEST_F(BatchTest, WarmCacheRerunDispatchesZeroCheckerWork) {
  const svc::BatchManifest m = manifest();
  svc::VerdictCache cache;

  svc::BatchScheduler cold(options(2, &cache));
  const svc::BatchResult first = cold.run(m);
  EXPECT_EQ(first.summary.cacheHits, 0U);
  EXPECT_EQ(first.summary.cacheStores, m.pairs.size());

  obs::MetricsRegistry metrics;
  obs::Context obsContext;
  obsContext.metrics = &metrics;
  svc::BatchScheduler warm(options(8, &cache));
  const svc::BatchResult second = warm.run(m, obsContext);

  // every pair answered from the cache: zero dispatches, and the metrics
  // counter agrees
  EXPECT_EQ(second.summary.cacheHits, m.pairs.size());
  EXPECT_EQ(second.summary.cacheStores, 0U);
  const auto& counters = metrics.snapshot().counters;
  const auto hit = counters.find("svc.cache.hit");
  ASSERT_NE(hit, counters.end());
  EXPECT_EQ(hit->second, m.pairs.size());
  const auto miss = counters.find("svc.cache.miss");
  ASSERT_NE(miss, counters.end());
  EXPECT_EQ(miss->second, 0U);

  // verdicts are the same answers the cold run produced
  for (std::size_t i = 0; i < m.pairs.size(); ++i) {
    EXPECT_EQ(second.outcomes[i].equivalence, first.outcomes[i].equivalence);
    EXPECT_TRUE(second.outcomes[i].cacheHit);
  }
}

TEST_F(BatchTest, DuplicateManifestEntriesAreDeduplicated) {
  // the same (fingerprint, fingerprint, configDigest) triple three times:
  // only the first occurrence is dispatched; the verdict fans out to the
  // other two in manifest order
  const std::string text =
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\"}\n"
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\"}\n"
      "{\"g\": \"" + path("adder.real") + "\", \"gp\": \"" +
      path("inc.real") + "\"}\n"
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\"}\n";
  std::istringstream is(text);
  ec::FlowConfiguration base;
  base.complete.timeoutSeconds = 60.0;
  const svc::BatchManifest m = svc::parseManifest(is, base);

  svc::BatchScheduler scheduler(options(2));
  const svc::BatchResult result = scheduler.run(m);

  ASSERT_EQ(result.outcomes.size(), 4U);
  EXPECT_EQ(result.summary.deduped, 2U);
  EXPECT_FALSE(result.outcomes[0].deduped);
  EXPECT_TRUE(result.outcomes[1].deduped);
  EXPECT_FALSE(result.outcomes[2].deduped);
  EXPECT_TRUE(result.outcomes[3].deduped);
  // the copied verdict matches the representative's, tier and all
  for (const std::size_t dup : {std::size_t{1}, std::size_t{3}}) {
    EXPECT_EQ(result.outcomes[dup].equivalence,
              result.outcomes[0].equivalence);
    EXPECT_EQ(result.outcomes[dup].tier, result.outcomes[0].tier);
    EXPECT_EQ(result.outcomes[dup].gateSet, result.outcomes[0].gateSet);
  }
}

TEST_F(BatchTest, DifferentConfigOverridesDefeatDeduplication) {
  // the same circuit pair under different verdict-relevant overrides must
  // NOT be coalesced — the configDigest keeps the triples apart
  const std::string text =
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\"}\n"
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\", \"sims\": 16}\n";
  std::istringstream is(text);
  ec::FlowConfiguration base;
  base.complete.timeoutSeconds = 60.0;
  const svc::BatchManifest m = svc::parseManifest(is, base);

  svc::BatchScheduler scheduler(options(2));
  const svc::BatchResult result = scheduler.run(m);
  ASSERT_EQ(result.outcomes.size(), 2U);
  EXPECT_EQ(result.summary.deduped, 0U);
  EXPECT_FALSE(result.outcomes[1].deduped);
}

TEST_F(BatchTest, DedupedBatchSerializationIsStableAcrossThreadCounts) {
  const std::string text =
      "{\"g\": \"" + path("adder.real") + "\", \"gp\": \"" +
      path("adder.real") + "\"}\n"
      "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
      path("qft_b.qasm") + "\"}\n"
      "{\"g\": \"" + path("adder.real") + "\", \"gp\": \"" +
      path("adder.real") + "\"}\n";
  ec::FlowConfiguration base;
  base.complete.timeoutSeconds = 60.0;
  std::string reference;
  for (const unsigned threads : {1U, 2U, 8U}) {
    std::istringstream is(text);
    const svc::BatchManifest m = svc::parseManifest(is, base);
    svc::BatchScheduler scheduler(options(threads));
    const std::string lines = redactedLines(scheduler.run(m));
    if (reference.empty()) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference) << "threads=" << threads;
    }
  }
}

TEST_F(BatchTest, UnreadableFileYieldsInvalidInputAndBatchContinues) {
  ec::FlowConfiguration base;
  std::istringstream is("{\"g\": \"" + path("nope.qasm") + "\", \"gp\": \"" +
                        path("qft_a.qasm") + "\"}\n"
                        "{\"g\": \"" + path("adder.real") +
                        "\", \"gp\": \"" + path("adder.real") + "\"}\n");
  const svc::BatchManifest m = svc::parseManifest(is, base);
  svc::BatchScheduler scheduler(options(1));
  const svc::BatchResult result = scheduler.run(m);

  ASSERT_EQ(result.outcomes.size(), 2U);
  EXPECT_EQ(result.outcomes[0].equivalence, ec::Equivalence::InvalidInput);
  EXPECT_FALSE(result.outcomes[0].error.empty());
  EXPECT_EQ(result.outcomes[1].equivalence, ec::Equivalence::Equivalent);
  EXPECT_EQ(result.summary.invalid, 1U);
  EXPECT_EQ(result.summary.equivalent, 1U);
}

} // namespace
