// Property sweep of the complete Fig. 3 flow: for a grid of random circuits
// and design-flow transformations, the flow must prove every faithful
// transformation equivalent and expose every injected error — the
// end-to-end contract of the whole library.

#include "ec/flow.hpp"
#include "gen/random_circuits.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"

#include <gtest/gtest.h>

using namespace qsimec;

namespace {

enum class Transformation { Optimize, MapLinear, MapRing, Decompose, Fuse };

struct SweepCase {
  std::uint64_t seed;
  Transformation transformation;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* t = "";
  switch (info.param.transformation) {
  case Transformation::Optimize:
    t = "optimize";
    break;
  case Transformation::MapLinear:
    t = "maplinear";
    break;
  case Transformation::MapRing:
    t = "mapring";
    break;
  case Transformation::Decompose:
    t = "decompose";
    break;
  case Transformation::Fuse:
    t = "fuse";
    break;
  }
  return std::string(t) + "_seed" + std::to_string(info.param.seed);
}

} // namespace

class FlowSweep : public ::testing::TestWithParam<SweepCase> {
protected:
  [[nodiscard]] static ir::QuantumComputation
  transform(const ir::QuantumComputation& g, Transformation t) {
    switch (t) {
    case Transformation::Optimize:
      return tf::optimize(g);
    case Transformation::MapLinear:
      return tf::mapCircuit(g, tf::CouplingMap::linear(g.qubits())).circuit;
    case Transformation::MapRing: {
      tf::MapperOptions options;
      options.routing = tf::RoutingHeuristic::Lookahead;
      return tf::mapCircuit(g, tf::CouplingMap::ring(g.qubits()), options)
          .circuit;
    }
    case Transformation::Decompose:
      return tf::decompose(g);
    case Transformation::Fuse: {
      tf::OptimizerOptions options;
      options.fuseSingleQubitGates = true;
      return tf::optimize(g, options);
    }
    }
    throw std::logic_error("unknown transformation");
  }
};

TEST_P(FlowSweep, FaithfulTransformationIsEquivalent) {
  const auto [seed, transformation] = GetParam();
  gen::RandomCircuitOptions options;
  options.toffoli = transformation == Transformation::Decompose;
  const auto g = gen::randomCircuit(5, 40, seed, options);
  const auto gPrime = transform(g, transformation);

  ec::FlowConfiguration config;
  config.simulation.seed = seed;
  config.complete.timeoutSeconds = 60;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result =
      flow.run(tf::padQubits(g, gPrime.qubits()), gPrime);
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence))
      << toString(result.equivalence);
}

TEST_P(FlowSweep, InjectedErrorIsExposed) {
  const auto [seed, transformation] = GetParam();
  gen::RandomCircuitOptions options;
  options.toffoli = transformation == Transformation::Decompose;
  const auto g = gen::randomCircuit(5, 40, seed, options);
  auto gPrime = transform(g, transformation);

  tf::ErrorInjector injector(seed * 31 + 7);
  const auto injected = injector.injectRandom(gPrime);

  ec::FlowConfiguration config;
  config.simulation.seed = seed;
  // richer stimuli close the phase-only blind spot of basis states
  config.simulation.stimuli = ec::StimuliKind::RandomProduct;
  config.simulation.maxSimulations = 16;
  config.complete.timeoutSeconds = 60;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result =
      flow.run(tf::padQubits(g, injected.circuit.qubits()), injected.circuit);
  EXPECT_EQ(result.equivalence, ec::Equivalence::NotEquivalent)
      << injected.error.description;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlowSweep,
    ::testing::Values(SweepCase{1, Transformation::Optimize},
                      SweepCase{2, Transformation::Optimize},
                      SweepCase{3, Transformation::MapLinear},
                      SweepCase{4, Transformation::MapLinear},
                      SweepCase{5, Transformation::MapRing},
                      SweepCase{6, Transformation::MapRing},
                      SweepCase{7, Transformation::Decompose},
                      SweepCase{8, Transformation::Decompose},
                      SweepCase{9, Transformation::Fuse},
                      SweepCase{10, Transformation::Fuse}),
    caseName);
