# Smoke test for tools/journal2folded.py: run one real check with
# --journal, fold the journal, and require the flow stage frames in the
# output. Driven from tests/CMakeLists.txt (test name tools.journal2folded).

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(COMMAND ${QSIMEC_CLI} gen ghz 4 ${WORK_DIR}/g.qasm
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed (${rc})")
endif()

# --no-prescreen: ghz vs itself is decided statically otherwise, and the
# folded output must contain the general flow's stage frames
execute_process(
  COMMAND ${QSIMEC_CLI} check ${WORK_DIR}/g.qasm ${WORK_DIR}/g.qasm
          --timeout 60 --no-prescreen --journal ${WORK_DIR}/run.jsonl
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check failed (${rc})")
endif()

execute_process(
  COMMAND ${PYTHON3} ${FOLD_SCRIPT} ${WORK_DIR}/run.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE folded ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journal2folded failed (${rc}): ${err}")
endif()

foreach(frame "flow;simulation" "flow;complete")
  if(NOT folded MATCHES "${frame} [0-9]+")
    message(FATAL_ERROR "missing frame '${frame}' in folded output:\n${folded}")
  endif()
endforeach()

# attribution ran (general tier, DD checkers): its gate-level frames form a
# second tree under the attr root
if(NOT folded MATCHES "attr;(simulation|alternating);(left|right):g[0-9]+ [0-9]+")
  message(FATAL_ERROR "missing attr;* gate frames in folded output:\n${folded}")
endif()

# folded counts are integer microseconds: every line is "stack count"
# (cannot split into a CMake list here — the stack frames themselves
# contain semicolons)
if(NOT folded MATCHES "^([^ \n]+ [0-9]+\n)+$")
  message(FATAL_ERROR "malformed folded output:\n${folded}")
endif()

# --format speedscope: a well-formed speedscope JSON profile whose samples
# and weights line up and whose frame indices are in range
execute_process(
  COMMAND ${PYTHON3} ${FOLD_SCRIPT} ${WORK_DIR}/run.jsonl
          --format speedscope -o ${WORK_DIR}/run.speedscope.json
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journal2folded --format speedscope failed (${rc}): ${err}")
endif()
execute_process(
  COMMAND ${PYTHON3} -c "
import json, sys
d = json.load(open(sys.argv[1]))
p = d['profiles'][0]
assert p['type'] == 'sampled' and p['unit'] == 'microseconds'
assert len(p['samples']) == len(p['weights']) > 0
frames = d['shared']['frames']
assert all(0 <= i < len(frames) for s in p['samples'] for i in s)
assert p['endValue'] == sum(p['weights'])
names = {f['name'] for f in frames}
assert 'flow' in names and 'attr' in names, names
" ${WORK_DIR}/run.speedscope.json
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "speedscope output invalid: ${err}")
endif()
