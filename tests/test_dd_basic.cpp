// Basic decision-diagram package checks: canonical numbers, basis states,
// gate DDs vs. their dense definitions, and the algebraic operations.

#include "dd/export.hpp"
#include "dd/package.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace dd = qsimec::dd;
using dd::ComplexValue;

namespace {
void expectNear(const ComplexValue& a, const ComplexValue& b,
                double eps = 1e-9) {
  EXPECT_NEAR(a.re, b.re, eps);
  EXPECT_NEAR(a.im, b.im, eps);
}
} // namespace

TEST(RealTable, CanonicalizesWithinTolerance) {
  dd::RealTable table;
  auto* a = table.lookup(0.5);
  auto* b = table.lookup(0.5 + 1e-14);
  EXPECT_EQ(a, b);
  auto* c = table.lookup(0.5 + 1e-6);
  EXPECT_NE(a, c);
}

TEST(RealTable, ZeroAndOneAreSpecial) {
  dd::RealTable table;
  EXPECT_EQ(table.lookup(0.0), table.zero());
  EXPECT_EQ(table.lookup(1e-15), table.zero());
  EXPECT_EQ(table.lookup(1.0), table.one());
  EXPECT_EQ(table.lookup(-0.0), table.zero());
}

TEST(RealTable, NegativeValuesDistinct) {
  dd::RealTable table;
  EXPECT_NE(table.lookup(0.25), table.lookup(-0.25));
}

TEST(RealTable, GarbageCollectKeepsReferenced) {
  dd::RealTable table;
  auto* a = table.lookup(0.123456);
  dd::RealTable::incRef(a);
  table.lookup(0.777);
  const std::size_t before = table.size();
  const std::size_t collected = table.garbageCollect();
  EXPECT_GE(collected, 1U);
  EXPECT_EQ(table.size(), before - collected);
  EXPECT_EQ(table.lookup(0.123456), a);
}

TEST(PackageVectors, ZeroStateAmplitudes) {
  dd::Package pkg(3);
  const auto zero = pkg.makeZeroState();
  expectNear(pkg.getAmplitude(zero, 0), {1, 0});
  for (std::uint64_t i = 1; i < 8; ++i) {
    expectNear(pkg.getAmplitude(zero, i), {0, 0});
  }
}

TEST(PackageVectors, BasisStatesAreOrthonormal) {
  dd::Package pkg(4);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto si = pkg.makeBasisState(i);
    for (std::uint64_t j = 0; j < 16; ++j) {
      const auto sj = pkg.makeBasisState(j);
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(pkg.fidelity(si, sj), expected, 1e-12)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(PackageVectors, BasisStatesShareStructure) {
  dd::Package pkg(6);
  const auto a = pkg.makeBasisState(5);
  const auto b = pkg.makeBasisState(5);
  EXPECT_EQ(a, b); // canonical: same pointer, same weight
}

TEST(PackageVectors, OutOfRangeBasisStateThrows) {
  dd::Package pkg(3);
  EXPECT_THROW((void)pkg.makeBasisState(8), std::invalid_argument);
}

TEST(PackageGates, HadamardOnZero) {
  dd::Package pkg(1);
  const auto h = pkg.makeGateDD(dd::Hmat, 0);
  const auto state = pkg.multiply(h, pkg.makeZeroState());
  expectNear(pkg.getAmplitude(state, 0), {dd::SQRT1_2, 0});
  expectNear(pkg.getAmplitude(state, 1), {dd::SQRT1_2, 0});
}

TEST(PackageGates, GateMatrixRoundTrip) {
  // every single-qubit gate DD must reproduce its defining dense matrix
  const std::vector<std::pair<const char*, dd::GateMatrix>> gates = {
      {"X", dd::Xmat},          {"Y", dd::Ymat},
      {"Z", dd::Zmat},          {"H", dd::Hmat},
      {"S", dd::Smat},          {"T", dd::Tmat},
      {"V", dd::Vmat},          {"Vdg", dd::Vdgmat},
      {"RX(0.3)", dd::rxMat(0.3)}, {"RY(1.2)", dd::ryMat(1.2)},
      {"RZ(2.1)", dd::rzMat(2.1)}, {"P(0.7)", dd::phaseMat(0.7)},
      {"U3", dd::u3Mat(0.4, 1.1, -0.6)}};
  dd::Package pkg(1);
  for (const auto& [name, mat] : gates) {
    const auto e = pkg.makeGateDD(mat, 0);
    for (std::uint64_t r = 0; r < 2; ++r) {
      for (std::uint64_t c = 0; c < 2; ++c) {
        expectNear(pkg.getEntry(e, r, c), mat[2 * r + c]);
      }
    }
  }
}

TEST(PackageGates, CnotMatchesDefinition) {
  dd::Package pkg(2);
  // control = qubit 1 (MSB), target = qubit 0: |10> -> |11>, |11> -> |10>
  const auto cx = pkg.makeGateDD(dd::Xmat, 0, {dd::Control{1, true}});
  const auto m = pkg.getMatrix(cx);
  const double expected[4][4] = {{1, 0, 0, 0},
                                 {0, 1, 0, 0},
                                 {0, 0, 0, 1},
                                 {0, 0, 1, 0}};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(m[r][c].re, expected[r][c], 1e-12) << r << "," << c;
      EXPECT_NEAR(m[r][c].im, 0.0, 1e-12);
    }
  }
}

TEST(PackageGates, NegativeControl) {
  dd::Package pkg(2);
  // X on qubit 0 applied when qubit 1 is |0>
  const auto cx = pkg.makeGateDD(dd::Xmat, 0, {dd::Control{1, false}});
  const auto s = pkg.multiply(cx, pkg.makeBasisState(0b00));
  EXPECT_NEAR(pkg.fidelity(s, pkg.makeBasisState(0b01)), 1.0, 1e-12);
  const auto s2 = pkg.multiply(cx, pkg.makeBasisState(0b10));
  EXPECT_NEAR(pkg.fidelity(s2, pkg.makeBasisState(0b10)), 1.0, 1e-12);
}

TEST(PackageGates, ToffoliTruthTable) {
  dd::Package pkg(3);
  const auto ccx = pkg.makeGateDD(
      dd::Xmat, 0, {dd::Control{1, true}, dd::Control{2, true}});
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t expected = ((i >> 1) & 1U) && ((i >> 2) & 1U) ? i ^ 1U : i;
    const auto out = pkg.multiply(ccx, pkg.makeBasisState(i));
    EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(expected)), 1.0, 1e-12)
        << "input " << i;
  }
}

TEST(PackageGates, InvalidArgumentsThrow) {
  dd::Package pkg(2);
  EXPECT_THROW((void)pkg.makeGateDD(dd::Xmat, 5), std::invalid_argument);
  EXPECT_THROW((void)pkg.makeGateDD(dd::Xmat, 0, {dd::Control{0, true}}),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.makeGateDD(dd::Xmat, 0,
                                    {dd::Control{1, true}, dd::Control{1, false}}),
               std::invalid_argument);
}

TEST(PackageMatrices, IdentityIsCanonical) {
  dd::Package pkg(4);
  const auto id1 = pkg.makeIdent();
  const auto id2 = pkg.makeIdent();
  EXPECT_EQ(id1, id2);
  for (std::uint64_t r = 0; r < 16; ++r) {
    for (std::uint64_t c = 0; c < 16; ++c) {
      expectNear(pkg.getEntry(id1, r, c),
                 (r == c) ? ComplexValue{1, 0} : ComplexValue{0, 0});
    }
  }
}

TEST(PackageMatrices, HadamardSelfInverse) {
  dd::Package pkg(3);
  const auto h = pkg.makeGateDD(dd::Hmat, 1);
  const auto hh = pkg.multiply(h, h);
  EXPECT_EQ(hh, pkg.makeIdent());
}

TEST(PackageMatrices, MultiplicationOrderMatters) {
  dd::Package pkg(1);
  const auto h = pkg.makeGateDD(dd::Hmat, 0);
  const auto t = pkg.makeGateDD(dd::Tmat, 0);
  EXPECT_NE(pkg.multiply(h, t), pkg.multiply(t, h));
}

TEST(PackageMatrices, ConjugateTransposeInvertsUnitary) {
  dd::Package pkg(2);
  const auto u = pkg.multiply(
      pkg.makeGateDD(dd::Hmat, 1),
      pkg.multiply(pkg.makeGateDD(dd::Xmat, 0, {dd::Control{1, true}}),
                   pkg.makeGateDD(dd::rzMat(0.37), 0)));
  const auto udg = pkg.conjugateTranspose(u);
  EXPECT_EQ(pkg.multiply(udg, u), pkg.makeIdent());
  EXPECT_EQ(pkg.multiply(u, udg), pkg.makeIdent());
}

TEST(PackageMatrices, KroneckerBuildsTensorProduct) {
  dd::Package pkg(2);
  // kron(X-on-one-qubit, H-on-one-qubit) must equal (X on q1)·(H on q0).
  // Single-level operands are built directly from terminal edges.
  const auto mkSingle = [&pkg](const dd::GateMatrix& m) {
    std::array<dd::mEdge, 4> children;
    for (std::size_t i = 0; i < 4; ++i) {
      const auto w = pkg.complexTable().lookup(m[i]);
      children[i] =
          w.exactlyZero() ? pkg.mZero() : dd::mEdge{dd::mNode::terminal(), w};
    }
    return pkg.makeMNode(0, children);
  };
  const auto kron = pkg.kronecker(mkSingle(dd::Xmat), mkSingle(dd::Hmat));
  const auto direct = pkg.multiply(pkg.makeGateDD(dd::Xmat, 1),
                                   pkg.makeGateDD(dd::Hmat, 0));
  EXPECT_EQ(kron, direct);
}

TEST(PackageMatrices, SwapExchangesQubits) {
  dd::Package pkg(3);
  const auto swap = pkg.makeSwapDD(0, 2);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t b0 = i & 1U;
    const std::uint64_t b2 = (i >> 2) & 1U;
    const std::uint64_t expected = (i & 0b010U) | (b0 << 2) | b2;
    const auto out = pkg.multiply(swap, pkg.makeBasisState(i));
    EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(expected)), 1.0, 1e-12);
  }
}

TEST(PackageMatrices, AddZeroIsNeutral) {
  dd::Package pkg(2);
  const auto h = pkg.makeGateDD(dd::Hmat, 0);
  EXPECT_EQ(pkg.add(h, pkg.mZero()), h);
  EXPECT_EQ(pkg.add(pkg.mZero(), h), h);
}

TEST(PackageMatrices, AdditionCancelsToZero) {
  dd::Package pkg(2);
  const auto h = pkg.makeGateDD(dd::Hmat, 0);
  const dd::mEdge negH{
      h.p, pkg.complexTable().lookup(-h.w.value().re, -h.w.value().im)};
  const auto sum = pkg.add(h, negH);
  EXPECT_TRUE(sum.isZeroTerminal());
}

TEST(PackageVectors, BellStateViaGates) {
  dd::Package pkg(2);
  auto state = pkg.makeZeroState();
  state = pkg.multiply(pkg.makeGateDD(dd::Hmat, 1), state);
  state = pkg.multiply(pkg.makeGateDD(dd::Xmat, 0, {dd::Control{1, true}}),
                       state);
  expectNear(pkg.getAmplitude(state, 0b00), {dd::SQRT1_2, 0});
  expectNear(pkg.getAmplitude(state, 0b11), {dd::SQRT1_2, 0});
  expectNear(pkg.getAmplitude(state, 0b01), {0, 0});
  expectNear(pkg.getAmplitude(state, 0b10), {0, 0});
  // root (q1) plus two distinct q0 children |0> and |1>
  EXPECT_EQ(dd::Package::size(state), 3U);
}

TEST(PackageVectors, InnerProductConjugatesLeft) {
  dd::Package pkg(1);
  // |+i> = S H |0>, <+i|+i> = 1, <+i|-i> = 0
  auto plusI = pkg.multiply(pkg.makeGateDD(dd::Smat, 0),
                            pkg.multiply(pkg.makeGateDD(dd::Hmat, 0),
                                         pkg.makeZeroState()));
  auto minusI = pkg.multiply(pkg.makeGateDD(dd::Sdgmat, 0),
                             pkg.multiply(pkg.makeGateDD(dd::Hmat, 0),
                                          pkg.makeZeroState()));
  expectNear(pkg.innerProduct(plusI, plusI), {1, 0});
  expectNear(pkg.innerProduct(plusI, minusI), {0, 0});
}

TEST(PackageGC, ReferencedDDsSurviveCollection) {
  dd::Package pkg(4);
  auto state = pkg.makeZeroState();
  const auto h = pkg.makeGateDD(dd::Hmat, 0);
  state = pkg.multiply(h, state);
  pkg.incRef(state);
  pkg.garbageCollect(true);
  // state must still be intact
  expectNear(pkg.getAmplitude(state, 0), {dd::SQRT1_2, 0});
  expectNear(pkg.getAmplitude(state, 1), {dd::SQRT1_2, 0});
  pkg.decRef(state);
}

TEST(PackageGC, UnreferencedNodesAreCollected) {
  dd::Package pkg(4);
  for (int k = 0; k < 10; ++k) {
    auto s = pkg.makeBasisState(static_cast<std::uint64_t>(k));
    (void)pkg.multiply(pkg.makeGateDD(dd::rxMat(0.1 * k), 2), s);
  }
  const auto before = pkg.stats().vNodesLive;
  pkg.garbageCollect(true);
  const auto after = pkg.stats().vNodesLive;
  EXPECT_LT(after, before);
}

TEST(PackageLimits, NodeBudgetThrows) {
  dd::Package pkg(10);
  pkg.setMatrixNodeLimit(16);
  EXPECT_THROW(
      {
        for (int q = 0; q < 10; ++q) {
          (void)pkg.makeGateDD(dd::rzMat(0.1 + q), static_cast<dd::Var>(q));
        }
      },
      dd::ResourceLimitExceeded);
}

TEST(Export, DotContainsNodes) {
  dd::Package pkg(2);
  auto state = pkg.multiply(pkg.makeGateDD(dd::Hmat, 1), pkg.makeZeroState());
  std::ostringstream ss;
  dd::exportDot(state, ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
}

TEST(Export, BasisLabelIsMsbFirst) {
  EXPECT_EQ(dd::basisLabel(0b110, 3), "110");
  EXPECT_EQ(dd::basisLabel(1, 4), "0001");
}
