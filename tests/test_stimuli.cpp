// Stimuli generation tests: determinism, normalization, reproducibility of
// counterexamples, and the key functional property motivating the richer
// families — product/stabilizer stimuli expose errors hidden behind many
// controls, which basis states only hit with probability 2^-c.

#include "ec/simulation_checker.hpp"
#include "ec/stimuli.hpp"
#include "gen/random_circuits.hpp"

#include <gtest/gtest.h>

using namespace qsimec;
using ec::StimuliKind;

class StimuliKindTest : public ::testing::TestWithParam<StimuliKind> {};

TEST_P(StimuliKindTest, StatesAreNormalizedAndDeterministic) {
  dd::Package pkg(5);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = ec::makeStimulus(pkg, GetParam(), seed);
    pkg.incRef(a);
    const auto b = ec::makeStimulus(pkg, GetParam(), seed);
    EXPECT_EQ(a, b); // canonical DDs: determinism = pointer equality
    EXPECT_NEAR(pkg.fidelity(a, a), 1.0, 1e-9);
    pkg.decRef(a);
  }
}

TEST_P(StimuliKindTest, DifferentSeedsGiveDifferentStates) {
  dd::Package pkg(5);
  std::size_t distinct = 0;
  const auto a = ec::makeStimulus(pkg, GetParam(), 1);
  pkg.incRef(a);
  for (std::uint64_t seed = 2; seed < 10; ++seed) {
    const auto b = ec::makeStimulus(pkg, GetParam(), seed);
    if (!(a == b)) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 6U);
  pkg.decRef(a);
}

TEST_P(StimuliKindTest, DescriptionIsNonEmpty) {
  EXPECT_FALSE(ec::describeStimulus(GetParam(), 3, 4).empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StimuliKindTest,
                         ::testing::Values(StimuliKind::ComputationalBasis,
                                           StimuliKind::RandomProduct,
                                           StimuliKind::RandomStabilizer),
                         [](const auto& info) {
                           std::string name(toString(info.param));
                           std::erase(name, '-');
                           return name;
                         });

TEST(Stimuli, BasisKindMatchesMakeBasisState) {
  dd::Package pkg(4);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(ec::makeStimulus(pkg, StimuliKind::ComputationalBasis, i),
              pkg.makeBasisState(i));
  }
}

TEST(Stimuli, ProductStatesAreProducts) {
  dd::Package pkg(8);
  const auto s = ec::makeStimulus(pkg, StimuliKind::RandomProduct, 5);
  EXPECT_LE(dd::Package::size(s), 8U);
}

TEST(Stimuli, BasisDescriptionShowsBits) {
  EXPECT_EQ(ec::describeStimulus(StimuliKind::ComputationalBasis, 0b101, 3),
            "|101>");
}

TEST(Stimuli, ProductStimuliExposeControlHeavyErrors) {
  // error behind c = 5 controls on n = 6 qubits: a basis state hits it with
  // probability 2^-5, a product stimulus with probability (1/2)^5 per
  // "half-firing" control — but every run contributes, so a handful of
  // product-stimuli runs detect what ~32 basis runs would need
  const std::size_t n = 6;
  const auto g = gen::randomCircuit(n, 30, 3);
  auto bad = g;
  bad.mcx({1, 2, 3, 4, 5}, 0);

  std::size_t basisDetected = 0;
  std::size_t productDetected = 0;
  const std::size_t trials = 10;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    ec::SimulationConfiguration config;
    config.maxSimulations = 4;
    config.seed = 100 + seed;

    config.stimuli = ec::StimuliKind::ComputationalBasis;
    if (ec::SimulationChecker(config).run(g, bad).equivalence ==
        ec::Equivalence::NotEquivalent) {
      ++basisDetected;
    }
    config.stimuli = ec::StimuliKind::RandomProduct;
    if (ec::SimulationChecker(config).run(g, bad).equivalence ==
        ec::Equivalence::NotEquivalent) {
      ++productDetected;
    }
  }
  // 4 basis runs detect with prob 1-(31/32)^4 ~ 12%; product stimuli with
  // near-certainty
  EXPECT_EQ(productDetected, trials);
  EXPECT_LT(basisDetected, trials);
}

TEST(Stimuli, StabilizerStimuliDetectEverythingQuickly) {
  const auto g = gen::randomCircuit(5, 30, 4);
  auto bad = g;
  bad.mcx({1, 2, 3, 4}, 0);
  ec::SimulationConfiguration config;
  config.maxSimulations = 3;
  config.seed = 11;
  config.stimuli = ec::StimuliKind::RandomStabilizer;
  const auto result = ec::SimulationChecker(config).run(g, bad);
  EXPECT_EQ(result.equivalence, ec::Equivalence::NotEquivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.counterexample->stimuli, StimuliKind::RandomStabilizer);

  // the counterexample must be reproducible from (kind, seed)
  dd::Package pkg(5);
  const auto s1 = ec::makeStimulus(pkg, result.counterexample->stimuli,
                                   result.counterexample->input);
  pkg.incRef(s1);
  const auto s2 = ec::makeStimulus(pkg, result.counterexample->stimuli,
                                   result.counterexample->input);
  EXPECT_EQ(s1, s2);
  pkg.decRef(s1);
}
