OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
x q[0];
majority q[0],q[1],q[2];
majority q[1],q[2],q[3];
