// One-shot teleportation core (unitary part): entangle, Bell-measure basis
OPENQASM 2.0;
include "qelib1.inc";
qreg msg[1];
qreg link[2];
u3(0.3,0.2,0.1) msg[0];
h link[0];
cx link[0],link[1];
cx msg[0],link[0];
h msg[0];
cx link[0],link[1];
cz msg[0],link[1];
