// Transformation tests: decomposition (ZYZ, matrix sqrt, controlled-U,
// Toffoli ladder, recursion), mapping (coupling maps, routing, layout
// correctness), optimization passes, and error injection. Correctness is
// checked with the construction equivalence checker throughout — these are
// exactly the G -> G' steps whose verification the paper targets.

#include "ec/construction_checker.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/random_circuits.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <random>

using namespace qsimec;

namespace {

void expectEquivalent(const ir::QuantumComputation& a,
                      const ir::QuantumComputation& b,
                      bool allowGlobalPhase = false) {
  const ec::ConstructionChecker checker;
  const auto result = checker.run(a, b);
  if (allowGlobalPhase) {
    EXPECT_TRUE(ec::provedEquivalent(result.equivalence))
        << toString(result.equivalence);
  } else {
    EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);
  }
}

} // namespace

// --- ZYZ / matrix sqrt -------------------------------------------------------

TEST(ZYZ, ReconstructsArbitraryUnitaries) {
  const std::vector<dd::GateMatrix> gates = {
      dd::Xmat,        dd::Ymat,          dd::Zmat,
      dd::Hmat,        dd::Smat,          dd::Tmat,
      dd::Vmat,        dd::SYmat,         dd::rxMat(0.7),
      dd::ryMat(-1.3), dd::rzMat(2.9),    dd::phaseMat(0.4),
      dd::u3Mat(0.3, 1.9, -2.2),          dd::u2Mat(0.5, -0.5)};
  for (const auto& u : gates) {
    const tf::ZYZAngles z = tf::zyzDecompose(u);
    // rebuild e^{ia} Rz(b) Ry(g) Rz(d) and compare entrywise
    auto rebuilt = dd::rzMat(z.delta);
    const auto ry = dd::ryMat(z.gamma);
    const auto rz2 = dd::rzMat(z.beta);
    const auto mul = [](const dd::GateMatrix& a, const dd::GateMatrix& b) {
      return dd::GateMatrix{a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
                            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
    };
    rebuilt = mul(rz2, mul(ry, rebuilt));
    const auto phase = dd::ComplexValue::fromPolar(1, z.alpha);
    for (std::size_t i = 0; i < 4; ++i) {
      const auto v = phase * rebuilt[i];
      EXPECT_NEAR(v.re, u[i].re, 1e-9);
      EXPECT_NEAR(v.im, u[i].im, 1e-9);
    }
  }
}

TEST(MatrixSqrt, SquaresBack) {
  const std::vector<dd::GateMatrix> gates = {
      dd::Xmat, dd::Ymat, dd::Zmat, dd::Hmat,        dd::Smat,
      dd::Tmat, dd::Vmat, dd::SYmat, dd::u3Mat(1.1, 0.3, -0.8),
      dd::rzMat(std::numbers::pi)};
  for (const auto& u : gates) {
    const dd::GateMatrix v = tf::matrixSqrt(u);
    const dd::GateMatrix vv = {
        v[0] * v[0] + v[1] * v[2], v[0] * v[1] + v[1] * v[3],
        v[2] * v[0] + v[3] * v[2], v[2] * v[1] + v[3] * v[3]};
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(vv[i].re, u[i].re, 1e-9);
      EXPECT_NEAR(vv[i].im, u[i].im, 1e-9);
    }
  }
}

// --- decomposition -----------------------------------------------------------

TEST(Decompose, ToffoliToCliffordT) {
  ir::QuantumComputation qc(3);
  qc.ccx(2, 1, 0);
  const auto dec = tf::decompose(qc);
  EXPECT_EQ(dec.qubits(), 3U);
  for (const auto& op : dec) {
    EXPECT_LE(op.controls().size(), 1U);
  }
  expectEquivalent(qc, dec);
}

TEST(Decompose, ControlledSingleQubitGates) {
  for (const ir::OpType t :
       {ir::OpType::H, ir::OpType::S, ir::OpType::T, ir::OpType::RX,
        ir::OpType::Phase, ir::OpType::U3}) {
    ir::QuantumComputation qc(2);
    qc.gate(t, 0, {ir::Control{1, true}}, {0.37, 0.11, -0.2});
    const auto dec = tf::decompose(qc);
    expectEquivalent(qc, dec);
  }
}

TEST(Decompose, NegativeControls) {
  ir::QuantumComputation qc(3);
  qc.x(0, {ir::Control{1, false}, ir::Control{2, true}});
  qc.phase(0.8, 2, {ir::Control{0, false}});
  const auto dec = tf::decompose(qc);
  for (const auto& op : dec) {
    for (const auto& c : op.controls()) {
      EXPECT_TRUE(c.positive);
    }
  }
  expectEquivalent(qc, dec);
}

class LadderTest : public ::testing::TestWithParam<int> {};

TEST_P(LadderTest, MctLadderIsExactOnFullRegister) {
  const int k = GetParam();
  ir::QuantumComputation qc(static_cast<std::size_t>(k + 1));
  std::vector<ir::Qubit> controls;
  for (int c = 1; c <= k; ++c) {
    controls.push_back(static_cast<ir::Qubit>(c));
  }
  qc.mcx(controls, 0);

  tf::DecompositionOptions options;
  options.scheme = tf::DecompositionScheme::VChainAncilla;
  const auto dec = tf::decompose(qc, options);
  EXPECT_EQ(dec.qubits(), static_cast<std::size_t>(k + 1) +
                              (k >= 3 ? static_cast<std::size_t>(k - 2) : 0U));
  // compare against the original padded to the decomposed width: the ladder
  // must be exact for EVERY ancilla value (borrowed, not clean, ancillas)
  expectEquivalent(tf::padQubits(qc, dec.qubits()), dec);
}

TEST_P(LadderTest, MctRecursionIsExact) {
  const int k = GetParam();
  if (k > 6) {
    GTEST_SKIP() << "recursion blows up beyond a handful of controls";
  }
  ir::QuantumComputation qc(static_cast<std::size_t>(k + 1));
  std::vector<ir::Qubit> controls;
  for (int c = 1; c <= k; ++c) {
    controls.push_back(static_cast<ir::Qubit>(c));
  }
  qc.mcx(controls, 0);

  tf::DecompositionOptions options;
  options.scheme = tf::DecompositionScheme::Recursion;
  const auto dec = tf::decompose(qc, options);
  EXPECT_EQ(dec.qubits(), qc.qubits()); // no ancillas
  expectEquivalent(qc, dec);
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, LadderTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Decompose, MultiControlledZAndPhase) {
  ir::QuantumComputation qc(5);
  qc.mcz({1, 2, 3, 4}, 0);
  qc.phase(0.6, 0, {ir::Control{1, true}, ir::Control{2, true},
                    ir::Control{3, true}});
  const auto dec = tf::decompose(qc);
  expectEquivalent(tf::padQubits(qc, dec.qubits()), dec);
}

TEST(Decompose, ControlledSwap) {
  ir::QuantumComputation qc(4);
  qc.swap(0, 1, {ir::Control{2, true}, ir::Control{3, true}});
  const auto dec = tf::decompose(qc);
  expectEquivalent(tf::padQubits(qc, dec.qubits()), dec);
}

TEST(Decompose, OnlyElementaryGatesRemain) {
  ir::QuantumComputation qc(6);
  qc.mcx({1, 2, 3, 4, 5}, 0);
  qc.mcz({0, 1, 2}, 3);
  qc.swap(2, 4, {ir::Control{0, true}});
  const auto dec = tf::decompose(qc);
  for (const auto& op : dec) {
    EXPECT_LE(op.usedQubits().size(), 2U) << op;
    if (op.controls().size() == 1) {
      EXPECT_EQ(op.type(), ir::OpType::X) << op;
    }
  }
}

TEST(Decompose, GateCountGrowsAsInTable1) {
  // the RevLib pattern: |G'| >> |G| after decomposition
  ir::QuantumComputation qc(8);
  for (int rep = 0; rep < 4; ++rep) {
    qc.mcx({1, 2, 3, 4, 5, 6, 7}, 0);
  }
  const auto dec = tf::decompose(qc);
  EXPECT_GT(dec.size(), 50 * qc.size());
}

// --- mapping ------------------------------------------------------------------

TEST(CouplingMapTest, Factories) {
  const auto linear = tf::CouplingMap::linear(4);
  EXPECT_TRUE(linear.connected(0, 1));
  EXPECT_FALSE(linear.connected(0, 2));
  const auto ring = tf::CouplingMap::ring(4);
  EXPECT_TRUE(ring.connected(3, 0));
  const auto grid = tf::CouplingMap::grid(2, 3);
  EXPECT_TRUE(grid.connected(0, 3)); // (0,0)-(1,0)
  EXPECT_FALSE(grid.connected(2, 3));
  const auto star = tf::CouplingMap::star(5);
  EXPECT_TRUE(star.connected(0, 4));
  EXPECT_FALSE(star.connected(1, 2));
}

TEST(CouplingMapTest, ShortestPath) {
  const auto linear = tf::CouplingMap::linear(5);
  const auto path = linear.shortestPath(0, 4);
  EXPECT_EQ(path.size(), 5U);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
}

class MapperArchTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(MapperArchTest, MappedCircuitIsEquivalent) {
  const auto [arch, nq] = GetParam();
  const auto coupling = [&]() -> tf::CouplingMap {
    if (std::string(arch) == "linear") {
      return tf::CouplingMap::linear(static_cast<std::size_t>(nq));
    }
    if (std::string(arch) == "ring") {
      return tf::CouplingMap::ring(static_cast<std::size_t>(nq));
    }
    if (std::string(arch) == "grid") {
      return tf::CouplingMap::grid(2, static_cast<std::size_t>(nq) / 2);
    }
    return tf::CouplingMap::star(static_cast<std::size_t>(nq));
  }();

  gen::RandomCircuitOptions options;
  options.toffoli = false; // mapper wants <= 2-qubit gates
  const auto qc =
      gen::randomCircuit(static_cast<std::size_t>(nq), 40,
                         17 + static_cast<std::uint64_t>(nq), options);
  const auto mapped = tf::mapCircuit(qc, coupling);
  // every two-qubit gate respects the coupling map
  for (const auto& op : mapped.circuit) {
    const auto used = op.usedQubits();
    if (used.size() == 2) {
      EXPECT_TRUE(coupling.connected(used[0], used[1])) << op;
    }
  }
  expectEquivalent(tf::padQubits(qc, mapped.circuit.qubits()), mapped.circuit);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MapperArchTest,
    ::testing::Values(std::make_pair("linear", 5), std::make_pair("ring", 6),
                      std::make_pair("grid", 6), std::make_pair("star", 5)),
    [](const auto& info) {
      return std::string(info.param.first) +
             std::to_string(info.param.second);
    });

TEST(CouplingMapTest, DirectedMapsTrackDirections) {
  const auto qx4 = tf::CouplingMap::ibmQX4();
  EXPECT_TRUE(qx4.directed());
  EXPECT_TRUE(qx4.allowsDirection(1, 0));
  EXPECT_FALSE(qx4.allowsDirection(0, 1));
  EXPECT_TRUE(qx4.connected(0, 1)); // routing treats it as undirected
  const auto linear = tf::CouplingMap::linear(3);
  EXPECT_TRUE(linear.allowsDirection(0, 1));
  EXPECT_TRUE(linear.allowsDirection(1, 0));
}

class DirectedMapperTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedMapperTest, Qx4MappingRespectsDirectionsAndEquivalence) {
  // CX/CZ/phase + single-qubit circuit
  std::mt19937_64 rng(GetParam());
  ir::QuantumComputation qc(5);
  std::uniform_int_distribution<std::size_t> qubit(0, 4);
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (int g = 0; g < 30; ++g) {
    const auto a = static_cast<ir::Qubit>(qubit(rng));
    auto b = static_cast<ir::Qubit>(qubit(rng));
    if (b == a) {
      b = static_cast<ir::Qubit>((b + 1) % 5);
    }
    switch (kind(rng)) {
    case 0:
      qc.h(a);
      break;
    case 1:
      qc.t(a);
      break;
    case 2:
      qc.cx(a, b);
      break;
    case 3:
      qc.cz(a, b);
      break;
    default:
      qc.phase(angle(rng), b, {ir::Control{a, true}});
      break;
    }
  }

  const auto qx4 = tf::CouplingMap::ibmQX4();
  const auto mapped = tf::mapCircuit(qc, qx4);
  for (const auto& op : mapped.circuit) {
    if (op.controls().size() == 1) {
      if (op.type() == ir::OpType::X) {
        EXPECT_TRUE(
            qx4.allowsDirection(op.controls()[0].qubit, op.target()))
            << op;
      } else {
        EXPECT_TRUE(qx4.connected(op.controls()[0].qubit, op.target())) << op;
      }
    }
  }
  expectEquivalent(qc, mapped.circuit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedMapperTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Mapper, Qx5MappingIsEquivalent) {
  gen::RandomCircuitOptions options;
  options.toffoli = false;
  options.rotations = false;
  const auto qc = gen::randomCircuit(8, 30, 99, options);
  // strip SWAPs and negative-control phases the directed mapper rejects;
  // keep it to CX/CZ/1q
  ir::QuantumComputation cleaned(8);
  for (const auto& op : qc) {
    const bool negative =
        !op.controls().empty() && !op.controls().front().positive;
    if (op.type() == ir::OpType::SWAP || negative) {
      continue;
    }
    cleaned.emplace(op);
  }
  const auto qx5 = tf::CouplingMap::ibmQX5();
  const auto mapped = tf::mapCircuit(cleaned, qx5);
  expectEquivalent(tf::padQubits(cleaned, 16), mapped.circuit);
}

TEST(Mapper, DirectedRejectsUndirectableGates) {
  ir::QuantumComputation qc(2);
  qc.rz(0.4, 1, {ir::Control{0, true}}); // CRZ is not symmetric
  // force the disallowed direction: qx4 allows only 1 -> 0
  tf::MapperOptions options;
  EXPECT_THROW((void)tf::mapCircuit(qc, tf::CouplingMap::ibmQX4(), options),
               std::domain_error);
}

TEST(Mapper, CustomInitialLayout) {
  gen::RandomCircuitOptions options;
  options.toffoli = false;
  const auto qc = gen::randomCircuit(4, 25, 23, options);
  tf::MapperOptions mapperOptions;
  mapperOptions.initialLayout = ir::Permutation({2, 0, 3, 1});
  const auto mapped =
      tf::mapCircuit(qc, tf::CouplingMap::linear(4), mapperOptions);
  expectEquivalent(qc, mapped.circuit);
}

class RoutingHeuristicTest
    : public ::testing::TestWithParam<tf::RoutingHeuristic> {};

TEST_P(RoutingHeuristicTest, EquivalentOnAllArchitectures) {
  gen::RandomCircuitOptions circuitOptions;
  circuitOptions.toffoli = false;
  const auto qc = gen::randomCircuit(6, 50, 77, circuitOptions);
  tf::MapperOptions options;
  options.routing = GetParam();
  for (const auto& coupling :
       {tf::CouplingMap::linear(6), tf::CouplingMap::ring(6),
        tf::CouplingMap::grid(2, 3), tf::CouplingMap::star(6)}) {
    const auto mapped = tf::mapCircuit(qc, coupling, options);
    for (const auto& op : mapped.circuit) {
      const auto used = op.usedQubits();
      if (used.size() == 2) {
        EXPECT_TRUE(coupling.connected(used[0], used[1])) << op;
      }
    }
    expectEquivalent(qc, mapped.circuit);
  }
}

TEST_P(RoutingHeuristicTest, GreedyPlacementStaysEquivalent) {
  gen::RandomCircuitOptions circuitOptions;
  circuitOptions.toffoli = false;
  const auto qc = gen::randomCircuit(5, 40, 41, circuitOptions);
  tf::MapperOptions options;
  options.routing = GetParam();
  options.placement = tf::PlacementStrategy::Greedy;
  const auto mapped = tf::mapCircuit(qc, tf::CouplingMap::grid(2, 3), options);
  expectEquivalent(tf::padQubits(qc, 6), mapped.circuit);
}

INSTANTIATE_TEST_SUITE_P(Heuristics, RoutingHeuristicTest,
                         ::testing::Values(tf::RoutingHeuristic::BfsChain,
                                           tf::RoutingHeuristic::Lookahead),
                         [](const auto& info) {
                           return info.param == tf::RoutingHeuristic::BfsChain
                                      ? std::string("bfs")
                                      : std::string("lookahead");
                         });

TEST(Mapper, CouplingDistance) {
  const auto linear = tf::CouplingMap::linear(6);
  EXPECT_EQ(linear.distance(0, 0), 0U);
  EXPECT_EQ(linear.distance(0, 5), 5U);
  EXPECT_EQ(linear.distance(5, 0), 5U);
  const auto grid = tf::CouplingMap::grid(3, 3);
  EXPECT_EQ(grid.distance(0, 8), 4U);
}

TEST(Mapper, GreedyPlacementPutsHotPairsTogether) {
  // qubits 0 and 1 interact constantly, the others never
  ir::QuantumComputation qc(5);
  for (int rep = 0; rep < 20; ++rep) {
    qc.cx(0, 1);
  }
  const auto coupling = tf::CouplingMap::linear(5);
  const auto layout = tf::greedyPlacement(qc, coupling);
  EXPECT_EQ(coupling.distance(layout[0], layout[1]), 1U);
}

TEST(Mapper, LookaheadBeatsBfsOnSpreadWorkload) {
  // interactions between far ends of a line: the lookahead router should
  // need no more (and typically fewer) SWAPs than the naive chain
  gen::RandomCircuitOptions circuitOptions;
  circuitOptions.toffoli = false;
  circuitOptions.rotations = false;
  const auto qc = gen::randomCircuit(8, 60, 5, circuitOptions);
  const auto coupling = tf::CouplingMap::linear(8);

  tf::MapperOptions bfs;
  bfs.routing = tf::RoutingHeuristic::BfsChain;
  tf::MapperOptions lookahead;
  lookahead.routing = tf::RoutingHeuristic::Lookahead;
  lookahead.placement = tf::PlacementStrategy::Greedy;

  const auto a = tf::mapCircuit(qc, coupling, bfs);
  const auto b = tf::mapCircuit(qc, coupling, lookahead);
  EXPECT_LE(b.addedSwaps, a.addedSwaps);
  expectEquivalent(qc, a.circuit);
  expectEquivalent(qc, b.circuit);
}

TEST(Mapper, NoSwapsOnCompleteGraph) {
  gen::RandomCircuitOptions options;
  options.toffoli = false;
  const auto qc = gen::randomCircuit(5, 30, 31, options);
  const auto mapped = tf::mapCircuit(qc, tf::CouplingMap::complete(5));
  EXPECT_EQ(mapped.addedSwaps, 0U);
}

TEST(Mapper, RejectsWideGates) {
  ir::QuantumComputation qc(4);
  qc.ccx(0, 1, 2);
  EXPECT_THROW((void)tf::mapCircuit(qc, tf::CouplingMap::linear(4)),
               std::invalid_argument);
}

// --- optimization --------------------------------------------------------------

TEST(Optimizer, CancelsInversePairs) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.h(0);
  qc.cx(0, 1);
  qc.cx(0, 1);
  qc.t(1);
  qc.tdg(1);
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 0U);
}

TEST(Optimizer, CancelsThroughDisjointGates) {
  ir::QuantumComputation qc(3);
  qc.s(0);
  qc.h(2); // disjoint — must not block the S/Sdg pair
  qc.sdg(0);
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 1U);
  EXPECT_EQ(opt.at(0).type(), ir::OpType::H);
}

TEST(Optimizer, DoesNotCancelThroughBlockingGates) {
  ir::QuantumComputation qc(2);
  qc.s(0);
  qc.h(0); // same qubit — blocks
  qc.sdg(0);
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 3U);
}

TEST(Optimizer, MergesRotations) {
  ir::QuantumComputation qc(1);
  qc.rz(0.25, 0);
  qc.rz(0.5, 0);
  qc.rx(1.0, 0);
  qc.rx(-1.0, 0); // cancels entirely
  tf::OptimizationStats stats;
  const auto opt = tf::optimize(qc, {}, &stats);
  ASSERT_EQ(opt.size(), 1U);
  EXPECT_EQ(opt.at(0).type(), ir::OpType::RZ);
  EXPECT_NEAR(opt.at(0).param(0), 0.75, 1e-12);
  expectEquivalent(qc, opt);
}

TEST(Optimizer, CancelsAcrossCommutingGates) {
  // CX(0->1) · T(0) · RZ(0.4, 1)? no — RZ on the CX *target* does not
  // commute; use diagonal-on-control and X-on-target interposers:
  ir::QuantumComputation qc(3);
  qc.cx(0, 1);
  qc.t(0);     // diagonal on the control — slides
  qc.x(1);     // X on the target — slides
  qc.cx(0, 1); // cancels with the first CX
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 2U);
  expectEquivalent(qc, opt);
}

TEST(Optimizer, DoesNotCancelAcrossNonCommutingGates) {
  ir::QuantumComputation qc(2);
  qc.cx(0, 1);
  qc.rz(0.4, 1); // diagonal on the *target*: blocks
  qc.cx(0, 1);
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 3U);

  ir::QuantumComputation qc2(2);
  qc2.cx(0, 1);
  qc2.x(0); // X on the *control*: blocks
  qc2.cx(0, 1);
  const auto opt2 = tf::optimize(qc2);
  EXPECT_EQ(opt2.size(), 3U);
}

TEST(Optimizer, MergesRotationsAcrossCommutingGates) {
  ir::QuantumComputation qc(2);
  qc.rz(0.25, 0);
  qc.cz(0, 1); // diagonal everywhere — slides
  qc.rz(0.5, 0);
  tf::OptimizationStats stats;
  const auto opt = tf::optimize(qc, {}, &stats);
  EXPECT_EQ(stats.mergedRotations, 1U);
  expectEquivalent(qc, opt);
}

TEST(Optimizer, CommutationCanBeDisabled) {
  ir::QuantumComputation qc(2);
  qc.cx(0, 1);
  qc.t(0);
  qc.cx(0, 1);
  tf::OptimizerOptions options;
  options.commutationAware = false;
  EXPECT_EQ(tf::optimize(qc, options).size(), 3U);
  EXPECT_EQ(tf::optimize(qc).size(), 1U);
}

TEST(Optimizer, RemovesIdentities) {
  ir::QuantumComputation qc(1);
  qc.i(0);
  qc.rz(0.0, 0);
  qc.h(0);
  const auto opt = tf::optimize(qc);
  EXPECT_EQ(opt.size(), 1U);
}

TEST(Optimizer, FusesSingleQubitRuns) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.t(0);
  qc.rz(0.3, 0);
  qc.h(0);
  qc.cx(0, 1);
  qc.s(1);
  qc.rx(0.2, 1);
  tf::OptimizerOptions options;
  options.fuseSingleQubitGates = true;
  const auto opt = tf::optimize(qc, options);
  EXPECT_LT(opt.size(), qc.size());
  expectEquivalent(qc, opt); // exact, including global phase (via GPhase)
}

TEST(Optimizer, RandomCircuitsStayEquivalent) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const auto qc = gen::randomCircuit(4, 60, seed);
    tf::OptimizerOptions options;
    options.fuseSingleQubitGates = true;
    const auto opt = tf::optimize(qc, options);
    expectEquivalent(qc, opt);
  }
}

// --- error injection ------------------------------------------------------------

class InjectorKindTest : public ::testing::TestWithParam<tf::ErrorKind> {};

TEST_P(InjectorKindTest, InjectedErrorIsDetectable) {
  const auto qc = gen::randomCircuit(4, 40, 77);
  tf::ErrorInjector injector(123);
  const auto injected = injector.inject(qc, GetParam());
  EXPECT_FALSE(injected.error.description.empty());

  const ec::ConstructionChecker checker;
  const auto result = checker.run(qc, injected.circuit);
  EXPECT_EQ(result.equivalence, ec::Equivalence::NotEquivalent)
      << injected.error.description;

  // and the paper's point: simulation finds it too, fast
  ec::SimulationConfiguration simConfig;
  simConfig.seed = 99;
  const ec::SimulationChecker sim(simConfig);
  EXPECT_EQ(sim.run(qc, injected.circuit).equivalence,
            ec::Equivalence::NotEquivalent);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, InjectorKindTest,
    ::testing::Values(tf::ErrorKind::RemoveGate, tf::ErrorKind::InsertGate,
                      tf::ErrorKind::WrongTargetCX,
                      tf::ErrorKind::FlipControlTargetCX,
                      tf::ErrorKind::AngleOffset, tf::ErrorKind::ReplaceGate),
    [](const auto& info) {
      std::string name(toString(info.param));
      std::erase(name, '-');
      return name;
    });

TEST(Injector, DeterministicUnderSeed) {
  const auto qc = gen::randomCircuit(4, 30, 7);
  tf::ErrorInjector a(42);
  tf::ErrorInjector b(42);
  const auto ra = a.injectRandom(qc);
  const auto rb = b.injectRandom(qc);
  EXPECT_EQ(ra.error.description, rb.error.description);
  EXPECT_EQ(ra.circuit.size(), rb.circuit.size());
}

TEST(Injector, FallsBackWhenKindImpossible) {
  ir::QuantumComputation qc(2);
  qc.h(0); // no rotation gate anywhere
  tf::ErrorInjector injector(5);
  const auto injected = injector.inject(qc, tf::ErrorKind::AngleOffset);
  EXPECT_NE(injected.error.description.find("fell back"), std::string::npos);
}
