// The parallel stimuli portfolio and the race-mode flow.
//
// The heart of this file is the determinism contract of
// docs/parallelism.md: for a fixed configuration seed, the verdict, the
// counterexample, the per-run fidelities, and the redacted JSON
// serialization are bit-identical for every thread count. The property
// tests sweep numThreads over {1, 2, 8} across all stimuli kinds, both
// simulateDifferenceCircuit modes, and dozens of random circuit pairs.

#include "dd/package.hpp"
#include "ec/flow.hpp"
#include "ec/parallel.hpp"
#include "ec/serialize.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/grover.hpp"
#include "gen/random_circuits.hpp"
#include "gen/revlib_like.hpp"
#include "obs/context.hpp"
#include "sim/dd_simulator.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace qsimec;
using ec::Equivalence;

namespace {

#ifdef __linux__
/// Current thread count of this process, from /proc/self/status.
int processThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(8));
    }
  }
  return -1;
}
#endif

} // namespace

// --- WorkerPool ----------------------------------------------------------

TEST(WorkerPool, RunsEveryTask) {
  ec::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4U);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(WorkerPool, WaitIsReusable) {
  ec::WorkerPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&done] { done.fetch_add(1); });
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(WorkerPool, ZeroRequestsStillGetOneWorker) {
  ec::WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 1U);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(Parallel, ResolveThreadCount) {
  EXPECT_GE(ec::defaultThreadCount(), 1U);
  EXPECT_EQ(ec::resolveThreadCount(4, 10), 4U);
  EXPECT_EQ(ec::resolveThreadCount(8, 3), 3U);  // capped at the run count
  EXPECT_EQ(ec::resolveThreadCount(1, 10), 1U);
  EXPECT_EQ(ec::resolveThreadCount(0, 1000), ec::defaultThreadCount());
  EXPECT_EQ(ec::resolveThreadCount(5, 0), 1U); // never zero workers
}

TEST(Parallel, PerRunSeedsAreStableAndDistinct) {
  const std::uint64_t a = ec::perRunStimulusSeed(42, 0);
  EXPECT_EQ(ec::perRunStimulusSeed(42, 0), a); // pure function
  // distinct across runs and across configuration seeds
  EXPECT_NE(ec::perRunStimulusSeed(42, 1), a);
  EXPECT_NE(ec::perRunStimulusSeed(43, 0), a);
}

// --- package-level cancellation ------------------------------------------

TEST(Package, RequestInterruptCancelsLongOperation) {
  dd::Package pkg(6);
  pkg.requestInterrupt();
  const auto qc = gen::randomCircuit(6, 400, 11);
  EXPECT_THROW(
      { (void)sim::simulate(qc, pkg.makeBasisState(0), pkg); },
      util::CancelledError);
  pkg.clearInterruptRequest();
  EXPECT_FALSE(pkg.interruptRequested());
  // after clearing, the same computation completes
  EXPECT_NO_THROW({ (void)sim::simulate(qc, pkg.makeBasisState(0), pkg); });
}

TEST(SimulationChecker, ExternalCancelFlagYieldsCancelledResult) {
  std::atomic<bool> cancel{true}; // already set: cancel before the first run
  ec::SimulationConfiguration config;
  config.maxSimulations = 10;
  config.seed = 3;
  config.cancelFlag = &cancel;
  config.numThreads = 2;
  const ec::SimulationChecker checker(config);
  const auto g = gen::randomCircuit(4, 30, 5);
  const auto result = checker.run(g, g);
  EXPECT_EQ(result.equivalence, Equivalence::NoInformation);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.simulations, 0U);
}

// --- the determinism contract --------------------------------------------

namespace {

struct PortfolioCase {
  ec::StimuliKind kind;
  bool differenceCircuit;
};

/// Run the checker at the given thread count, also collecting the
/// fidelity-deviation histogram.
std::pair<ec::CheckResult, obs::HistogramSnapshot>
runAt(const ir::QuantumComputation& g, const ir::QuantumComputation& gPrime,
      const PortfolioCase& pcase, std::uint64_t seed, unsigned threads) {
  ec::SimulationConfiguration config;
  config.maxSimulations = 10;
  config.seed = seed;
  config.stimuli = pcase.kind;
  config.simulateDifferenceCircuit = pcase.differenceCircuit;
  config.numThreads = threads;
  obs::MetricsRegistry metrics;
  const ec::SimulationChecker checker(config);
  const auto result = checker.run(g, gPrime, {nullptr, &metrics});
  obs::HistogramSnapshot histogram;
  const auto& histograms = metrics.snapshot().histograms;
  if (const auto it = histograms.find("simulation.fidelity_deviation");
      it != histograms.end()) {
    histogram = it->second;
  }
  return {result, histogram};
}

void expectIdenticalAcrossThreadCounts(const ir::QuantumComputation& g,
                                       const ir::QuantumComputation& gPrime,
                                       const PortfolioCase& pcase,
                                       std::uint64_t seed) {
  const auto [reference, referenceHist] = runAt(g, gPrime, pcase, seed, 1);
  const std::string referenceJson =
      toJson(reference, ec::SerializeOptions{.redactProfile = true});
  for (const unsigned threads : {2U, 8U}) {
    const auto [result, hist] = runAt(g, gPrime, pcase, seed, threads);
    EXPECT_EQ(result.equivalence, reference.equivalence);
    EXPECT_EQ(result.simulations, reference.simulations);
    EXPECT_EQ(result.counterexample.has_value(),
              reference.counterexample.has_value());
    if (result.counterexample && reference.counterexample) {
      // bit-identical, not approximately equal: the portfolio reruns the
      // exact float pipeline of the sequential sweep
      EXPECT_EQ(result.counterexample->input, reference.counterexample->input);
      EXPECT_EQ(result.counterexample->fidelity,
                reference.counterexample->fidelity);
      EXPECT_EQ(result.counterexample->stimuli,
                reference.counterexample->stimuli);
    }
    EXPECT_EQ(toJson(result, ec::SerializeOptions{.redactProfile = true}),
              referenceJson)
        << "thread count " << threads << " changed the redacted JSON";
    EXPECT_EQ(hist.count, referenceHist.count);
    EXPECT_EQ(hist.sum, referenceHist.sum);
    EXPECT_EQ(hist.min, referenceHist.min);
    EXPECT_EQ(hist.max, referenceHist.max);
  }
}

} // namespace

class PortfolioDeterminism : public ::testing::TestWithParam<PortfolioCase> {};

TEST_P(PortfolioDeterminism, NonEquivalentPairsMatchAcrossThreadCounts) {
  const PortfolioCase pcase = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto g = gen::randomCircuit(5, 40, seed + 100);
    tf::ErrorInjector injector(seed + 7);
    const auto injected = injector.injectRandom(g);
    expectIdenticalAcrossThreadCounts(g, injected.circuit, pcase, seed);
  }
}

TEST_P(PortfolioDeterminism, EquivalentPairsMatchAcrossThreadCounts) {
  const PortfolioCase pcase = GetParam();
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const auto g = gen::randomCircuit(5, 40, seed + 200);
    expectIdenticalAcrossThreadCounts(g, g, pcase, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndModes, PortfolioDeterminism,
    ::testing::Values(
        PortfolioCase{ec::StimuliKind::ComputationalBasis, false},
        PortfolioCase{ec::StimuliKind::ComputationalBasis, true},
        PortfolioCase{ec::StimuliKind::RandomProduct, false},
        PortfolioCase{ec::StimuliKind::RandomProduct, true},
        PortfolioCase{ec::StimuliKind::RandomStabilizer, false},
        PortfolioCase{ec::StimuliKind::RandomStabilizer, true}),
    [](const auto& info) {
      std::string name{toString(info.param.kind)};
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + (info.param.differenceCircuit ? "_diff" : "_indep");
    });

TEST(Parallel, ReportsEffectiveThreadCount) {
  ec::SimulationConfiguration config;
  config.maxSimulations = 3;
  config.numThreads = 8; // more workers than runs: capped
  const ec::SimulationChecker checker(config);
  const auto g = gen::randomCircuit(4, 20, 1);
  const auto result = checker.run(g, g);
  EXPECT_EQ(result.numThreads, 3U);
  EXPECT_EQ(result.equivalence, Equivalence::ProbablyEquivalent);
}

TEST(Flow, StagedJsonIsIdenticalAcrossThreadCounts) {
  const auto g = gen::randomCircuit(5, 40, 17);
  tf::ErrorInjector injector(17);
  const auto injected = injector.injectRandom(g);
  const ec::SerializeOptions redact{.redactProfile = true};
  for (const auto* gPrime : {&g, &injected.circuit}) {
    std::string reference;
    for (const unsigned threads : {1U, 2U, 8U}) {
      ec::FlowConfiguration config;
      config.simulation.seed = 23;
      config.simulation.numThreads = threads;
      const ec::EquivalenceCheckingFlow flow(config);
      const std::string json = toJson(flow.run(g, *gPrime), redact);
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference) << "flow JSON changed at " << threads
                                   << " threads";
      }
    }
  }
}

// --- race mode -----------------------------------------------------------

TEST(Flow, RaceOnEquivalentPairIsWonByCompleteCheck) {
  const auto g = tf::decompose(gen::grover(4, 0b1011));
  ec::FlowConfiguration config;
  config.mode = ec::FlowMode::Race;
  config.simulation.seed = 5;
  config.complete.timeoutSeconds = 60.0;
  // g vs g would be decided statically by the prescreen; this test pins
  // the race machinery itself
  config.prescreen.enabled = false;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, g);
  EXPECT_TRUE(provedEquivalent(result.equivalence));
  EXPECT_EQ(result.mode, ec::FlowMode::Race);
  EXPECT_EQ(result.winner, ec::RaceWinner::Complete);
  EXPECT_FALSE(result.completeCancelled);
}

TEST(Flow, RaceDegeneratesToStagedWhenOneSideIsSkipped) {
  const auto g = gen::randomCircuit(4, 20, 9);
  ec::FlowConfiguration config;
  config.mode = ec::FlowMode::Race;
  config.skipComplete = true;
  config.prescreen.enabled = false; // g vs g is otherwise decided statically
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, g);
  EXPECT_EQ(result.mode, ec::FlowMode::Staged);
  EXPECT_EQ(result.winner, ec::RaceWinner::None);
  EXPECT_EQ(result.equivalence, Equivalence::ProbablyEquivalent);
}

TEST(Flow, RaceStressCancelsTheCompleteCheck) {
  // A pair built so the simulation reliably wins: an MCT circuit against
  // its elementary decomposition (|G'| >> |G|, the RevLib pattern) with an
  // injected error. One basis simulation finds the mismatch in ~0.1s; the
  // alternating check misaligns on the wildly different gate counts and
  // needs over a second — an order-of-magnitude margin, so its span must
  // end cancelled on every iteration.
  const auto base = gen::hwbCircuit(6);
  auto gPrime = tf::decompose(base);
  const auto g = tf::padQubits(base, gPrime.qubits());
  tf::ErrorInjector injector(13);
  const auto injected = injector.injectRandom(gPrime);

#ifdef __linux__
  // Spawn-and-join one throwaway thread first: sanitizer runtimes (TSan)
  // lazily start a permanent background thread on the first pthread_create,
  // which would otherwise show up as a false "leak" in the count below.
  std::thread([] {}).join();
  const int threadsBefore = processThreadCount();
#endif

  ec::FlowConfiguration config;
  config.mode = ec::FlowMode::Race;
  config.simulation.seed = 29;
  config.simulation.numThreads = 2;
  config.complete.timeoutSeconds = 120.0; // cancellation, not timeout
  const ec::EquivalenceCheckingFlow flow(config);

  for (int iteration = 0; iteration < 50; ++iteration) {
    obs::Tracer tracer;
    const auto result = flow.run(g, injected.circuit, {&tracer, nullptr});
    ASSERT_EQ(result.equivalence, Equivalence::NotEquivalent)
        << "iteration " << iteration;
    ASSERT_TRUE(result.counterexample.has_value());
    ASSERT_EQ(result.winner, ec::RaceWinner::Simulation);
    ASSERT_TRUE(result.completeCancelled) << "iteration " << iteration;
    ASSERT_FALSE(result.completeTimedOut);

    // the loser's span must exist, be closed, and record its cancellation
    bool sawCancelledCompleteSpan = false;
    for (const auto& event : tracer.events()) {
      if (event.name != "checker.alternating") {
        continue;
      }
      EXPECT_GE(event.durMicros, 0.0) << "span leaked open";
      for (const auto& arg : event.args) {
        if (arg.key == "cancelled" && arg.value == "1") {
          sawCancelledCompleteSpan = true;
        }
      }
    }
    EXPECT_TRUE(sawCancelledCompleteSpan) << "iteration " << iteration;
    EXPECT_EQ(tracer.openSpans(), 0);
  }

#ifdef __linux__
  // every jthread (race loser + pool workers) must have been joined
  EXPECT_EQ(processThreadCount(), threadsBefore);
#endif
}
