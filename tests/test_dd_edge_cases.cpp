// Edge-case coverage of the DD package: degenerate inputs, zero handling,
// identity caching, export robustness, stats, and the package limits.

#include "dd/export.hpp"
#include "dd/package.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace dd = qsimec::dd;

TEST(DDEdgeCases, SingleQubitPackage) {
  dd::Package pkg(1);
  const auto x = pkg.makeGateDD(dd::Xmat, 0);
  const auto one = pkg.multiply(x, pkg.makeZeroState());
  EXPECT_NEAR(pkg.getAmplitude(one, 1).re, 1.0, 1e-12);
  EXPECT_EQ(pkg.makeIdent(), pkg.multiply(x, x));
}

TEST(DDEdgeCases, PackageSizeValidation) {
  EXPECT_THROW(dd::Package(0), std::invalid_argument);
  EXPECT_THROW(dd::Package(200), std::invalid_argument);
  EXPECT_NO_THROW(dd::Package(128));
}

TEST(DDEdgeCases, ZeroEdgePropagation) {
  dd::Package pkg(3);
  const auto h = pkg.makeGateDD(dd::Hmat, 1);
  // multiplying anything by a zero edge is zero
  EXPECT_TRUE(pkg.multiply(h, pkg.vZero()).isZeroTerminal());
  EXPECT_TRUE(pkg.multiply(pkg.mZero(), pkg.makeZeroState()).isZeroTerminal());
  EXPECT_TRUE(pkg.multiply(pkg.mZero(), h).isZeroTerminal());
  EXPECT_TRUE(pkg.kronecker(pkg.mZero(), h).isZeroTerminal());
  EXPECT_TRUE(pkg.conjugateTranspose(pkg.mZero()).isZeroTerminal());
  // inner products with the zero vector vanish
  const auto s = pkg.makeZeroState();
  const auto ip = pkg.innerProduct(pkg.vZero(), s);
  EXPECT_EQ(ip.re, 0.0);
  EXPECT_EQ(ip.im, 0.0);
}

TEST(DDEdgeCases, IdentityCacheSurvivesGc) {
  dd::Package pkg(5);
  const auto id1 = pkg.makeIdent();
  pkg.garbageCollect(true);
  const auto id2 = pkg.makeIdent();
  EXPECT_EQ(id1, id2);
  EXPECT_THROW((void)pkg.makeIdent(6), std::invalid_argument);
  // partial identities are prefixes of the cached chain
  const auto id3 = pkg.makeIdent(3);
  EXPECT_EQ(id3.p->v, 2);
}

TEST(DDEdgeCases, ControlsAboveAndBelowTarget) {
  dd::Package pkg(4);
  // same functionality built with the control above vs. below the target
  const auto cxUp = pkg.makeGateDD(dd::Xmat, 0, {dd::Control{3, true}});
  const auto cxDown = pkg.makeGateDD(dd::Xmat, 3, {dd::Control{0, true}});
  for (std::uint64_t i = 0; i < 16; ++i) {
    const std::uint64_t upExpected = ((i >> 3) & 1U) ? (i ^ 1U) : i;
    const std::uint64_t downExpected = (i & 1U) ? (i ^ 8U) : i;
    EXPECT_NEAR(pkg.fidelity(pkg.multiply(cxUp, pkg.makeBasisState(i)),
                             pkg.makeBasisState(upExpected)),
                1.0, 1e-12);
    EXPECT_NEAR(pkg.fidelity(pkg.multiply(cxDown, pkg.makeBasisState(i)),
                             pkg.makeBasisState(downExpected)),
                1.0, 1e-12);
  }
}

TEST(DDEdgeCases, MixedPolarityControls) {
  dd::Package pkg(4);
  const auto gate = pkg.makeGateDD(
      dd::Xmat, 1, {dd::Control{0, true}, dd::Control{2, false},
                    dd::Control{3, true}});
  for (std::uint64_t i = 0; i < 16; ++i) {
    const bool fires = ((i & 1U) != 0U) && ((i & 4U) == 0U) && ((i & 8U) != 0U);
    const std::uint64_t expected = fires ? (i ^ 2U) : i;
    EXPECT_NEAR(pkg.fidelity(pkg.multiply(gate, pkg.makeBasisState(i)),
                             pkg.makeBasisState(expected)),
                1.0, 1e-12)
        << i;
  }
}

TEST(DDEdgeCases, GetEntryOnMaskedPaths) {
  dd::Package pkg(2);
  const auto cx = pkg.makeGateDD(dd::Xmat, 0, {dd::Control{1, true}});
  // zero entries read back as exactly zero
  const auto zero = pkg.getEntry(cx, 0, 1);
  EXPECT_EQ(zero.re, 0.0);
  EXPECT_EQ(zero.im, 0.0);
}

TEST(DDEdgeCases, MatrixExportGuards) {
  dd::Package pkg(16);
  EXPECT_THROW((void)pkg.getMatrix(pkg.makeIdent()), std::invalid_argument);
}

TEST(DDEdgeCases, DotExportOfMatrices) {
  dd::Package pkg(2);
  std::ostringstream ss;
  dd::exportDot(pkg.makeGateDD(dd::Hmat, 0), ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph matrixDD"), std::string::npos);
  EXPECT_NE(dot.find("q0"), std::string::npos);
}

TEST(DDEdgeCases, StatsReflectActivity) {
  dd::Package pkg(4);
  const auto before = pkg.stats();
  auto s = pkg.makeZeroState();
  for (int k = 0; k < 8; ++k) {
    s = pkg.multiply(pkg.makeGateDD(dd::rxMat(0.1 * (k + 1)),
                                    static_cast<dd::Var>(k % 4)),
                     s);
  }
  const auto after = pkg.stats();
  EXPECT_GT(after.vNodesLive, before.vNodesLive);
  EXPECT_GT(after.realsLive, before.realsLive);
  pkg.garbageCollect(true);
  EXPECT_GE(after.vNodesLive, pkg.stats().vNodesLive);
  EXPECT_EQ(pkg.stats().gcRuns, 1U);
}

TEST(DDEdgeCases, ProductStateValidation) {
  dd::Package pkg(2);
  EXPECT_THROW((void)pkg.makeProductState({{dd::ComplexValue{1, 0},
                                            dd::ComplexValue{0, 0}}}),
               std::invalid_argument); // wrong arity
  EXPECT_THROW(
      (void)pkg.makeProductState({{dd::ComplexValue{0, 0},
                                   dd::ComplexValue{0, 0}},
                                  {dd::ComplexValue{1, 0},
                                   dd::ComplexValue{0, 0}}}),
      std::invalid_argument); // zero qubit state
}

TEST(DDEdgeCases, InterruptHookFires) {
  dd::Package pkg(12);
  std::size_t calls = 0;
  pkg.setInterruptHook([&calls] { ++calls; });
  // enough node construction to trip the polling interval several times
  auto s = pkg.makeZeroState();
  for (dd::Var q = 0; q < 12; ++q) {
    s = pkg.multiply(pkg.makeGateDD(dd::Hmat, q), s);
  }
  for (int k = 0; k < 12; ++k) {
    s = pkg.multiply(pkg.makeGateDD(dd::rxMat(0.1 + k),
                                    static_cast<dd::Var>(k % 12)),
                     s);
    s = pkg.multiply(
        pkg.makeGateDD(dd::Xmat, static_cast<dd::Var>((k + 1) % 12),
                       {dd::Control{static_cast<dd::Var>(k % 12), true}}),
        s);
  }
  EXPECT_GT(calls, 0U);
}
