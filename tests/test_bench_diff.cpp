// bench-diff tests: the JSON reader (util::parseJson + the qsimec-bench-v1
// loader) and the regression-gate comparison rules — identical reports pass,
// verdict flips and deterministic-counter drift hard-fail, wall-time growth
// fails beyond the tolerance, timed-out records are exempt.

#include "obs/bench_diff.hpp"
#include "obs/bench_report.hpp"
#include "util/json_parse.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace qsimec;

namespace {

/// A minimal but complete qsimec-bench-v1 report with one record.
obs::BenchReportFile makeReport(const std::string& outcome, double seconds,
                                std::uint64_t addOps,
                                std::uint64_t timedOut = 0) {
  obs::BenchReportFile report;
  report.harness = "flow_baseline";
  report.timeoutSeconds = 10.0;
  report.simulations = 10;
  report.seed = 42;
  report.threads = 1;
  report.paperScale = false;
  obs::BenchReportRecord record;
  record.name = "Grover 5";
  record.qubits = 9;
  record.gatesG = 100;
  record.gatesGPrime = 90;
  record.outcome = outcome;
  record.metrics.counters["complete.dd.add_ops"] = addOps;
  record.metrics.counters["complete.timed_out"] = timedOut;
  record.metrics.counters["flow.counterexample"] =
      outcome == "not equivalent" ? 1 : 0;
  record.metrics.gauges["total.seconds"] = seconds;
  record.metrics.gauges["complete.seconds"] = seconds / 2;
  report.records.push_back(std::move(record));
  return report;
}

} // namespace

TEST(JsonParse, ParsesTheBasicShapes) {
  const util::JsonValue v = util::parseJson(
      R"({"s":"aA\n","n":-2.5e-1,"b":true,"x":null,"a":[1,2,3],"o":{"k":7}})");
  EXPECT_EQ(v.at("s").asString(), "aA\n");
  EXPECT_DOUBLE_EQ(v.at("n").asNumber(), -0.25);
  EXPECT_TRUE(v.at("b").asBool());
  EXPECT_TRUE(v.at("x").isNull());
  ASSERT_EQ(v.at("a").elements().size(), 3U);
  EXPECT_EQ(v.at("a").elements()[1].asUint(), 2U);
  EXPECT_EQ(v.at("o").at("k").asUint(), 7U);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), util::JsonParseError);
  EXPECT_THROW((void)v.at("s").asNumber(), util::JsonParseError);

  // member order is preserved
  EXPECT_EQ(v.members()[0].first, "s");
  EXPECT_EQ(v.members()[5].first, "o");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)util::parseJson(""), util::JsonParseError);
  EXPECT_THROW((void)util::parseJson("{"), util::JsonParseError);
  EXPECT_THROW((void)util::parseJson("{\"a\":1,}"), util::JsonParseError);
  EXPECT_THROW((void)util::parseJson("{'a':1}"), util::JsonParseError);
  EXPECT_THROW((void)util::parseJson("[1,2] junk"), util::JsonParseError);
  EXPECT_THROW((void)util::parseJson("\"unterminated"), util::JsonParseError);
  // depth bomb
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)util::parseJson(deep), util::JsonParseError);
}

TEST(BenchReport, ParsesTheV1Schema) {
  const std::string json = R"({
    "schema":"qsimec-bench-v1","harness":"flow_baseline",
    "timeout_seconds":10,"simulations":10,"seed":42,"threads":1,
    "paper_scale":false,
    "results":[{"name":"Grover 5","qubits":9,"gates_g":100,
      "gates_g_prime":90,"outcome":"equivalent",
      "metrics":{"counters":{"complete.dd.add_ops":1234},
                 "gauges":{"total.seconds":0.5},
                 "histograms":{"sim.f":{"count":2,"sum":2.0,"min":1.0,"max":1.0}}}}]})";
  const obs::BenchReportFile report = obs::parseBenchReport(json);
  EXPECT_EQ(report.harness, "flow_baseline");
  EXPECT_EQ(report.simulations, 10U);
  ASSERT_EQ(report.records.size(), 1U);
  const obs::BenchReportRecord* record = report.find("Grover 5");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->qubits, 9U);
  EXPECT_EQ(record->outcome, "equivalent");
  EXPECT_EQ(record->metrics.counters.at("complete.dd.add_ops"), 1234U);
  EXPECT_DOUBLE_EQ(record->metrics.gauges.at("total.seconds"), 0.5);
  EXPECT_EQ(record->metrics.histograms.at("sim.f").count, 2U);
  EXPECT_EQ(report.find("nope"), nullptr);
}

TEST(BenchReport, RejectsWrongSchema) {
  EXPECT_THROW(
      (void)obs::parseBenchReport(
          R"({"schema":"qsimec-bench-v2","harness":"x","timeout_seconds":1,
              "simulations":1,"seed":1,"threads":1,"paper_scale":false,
              "results":[]})"),
      util::JsonParseError);
  EXPECT_THROW((void)obs::parseBenchReport("{}"), util::JsonParseError);
  EXPECT_THROW((void)obs::loadBenchReport("/nonexistent/report.json"),
               std::runtime_error);
}

TEST(BenchDiff, IdenticalReportsPass) {
  const obs::BenchReportFile report = makeReport("equivalent", 0.5, 1000);
  const obs::BenchDiffResult result = obs::diffBenchReports(report, report);
  EXPECT_FALSE(result.hasRegression());
  ASSERT_EQ(result.rows.size(), 1U);
  EXPECT_FALSE(result.rows[0].regression);
  EXPECT_FALSE(obs::formatBenchDiff(result).empty());
}

TEST(BenchDiff, TwoTimesSlowdownIsCaught) {
  const obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  const obs::BenchReportFile current = makeReport("equivalent", 1.0, 1000);
  const obs::BenchDiffResult result = obs::diffBenchReports(baseline, current);
  EXPECT_TRUE(result.hasRegression());
  ASSERT_EQ(result.rows.size(), 1U);
  EXPECT_TRUE(result.rows[0].regression);

  // ...and the same delta within tolerance passes
  const obs::BenchDiffOptions loose{.timeTolerance = 1.5};
  EXPECT_FALSE(
      obs::diffBenchReports(baseline, current, loose).hasRegression());
}

TEST(BenchDiff, PerThreadSecondsColumnsAreGatedToo) {
  // parallel_sweep reports wall-times as "sim.seconds.tN" (a ".seconds."
  // segment, not a suffix); those columns must be gated as well.
  obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  baseline.records[0].metrics.gauges.erase("total.seconds");
  baseline.records[0].metrics.gauges.erase("complete.seconds");
  baseline.records[0].metrics.gauges["sim.seconds.t2"] = 0.5;
  obs::BenchReportFile current = baseline;
  current.records[0].metrics.gauges["sim.seconds.t2"] = 1.0;
  const obs::BenchDiffResult result = obs::diffBenchReports(baseline, current);
  EXPECT_TRUE(result.hasRegression());
  ASSERT_EQ(result.rows.size(), 1U);
  EXPECT_DOUBLE_EQ(result.rows[0].baseSeconds, 0.5);
  EXPECT_DOUBLE_EQ(result.rows[0].currentSeconds, 1.0);
}

TEST(BenchDiff, FlippedVerdictIsCaught) {
  const obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  obs::BenchReportFile current = makeReport("not equivalent", 0.5, 1000);
  const obs::BenchDiffResult result = obs::diffBenchReports(baseline, current);
  EXPECT_TRUE(result.hasRegression());
  bool sawFlip = false;
  for (const obs::DiffFinding& finding : result.findings) {
    sawFlip = sawFlip ||
              (finding.severity == obs::DiffSeverity::Regression &&
               finding.message.find("verdict flipped") != std::string::npos);
  }
  EXPECT_TRUE(sawFlip);
}

TEST(BenchDiff, DeterministicCounterDriftIsCaught) {
  const obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  const obs::BenchReportFile current = makeReport("equivalent", 0.5, 1001);
  // default: exact equality required
  EXPECT_TRUE(obs::diffBenchReports(baseline, current).hasRegression());
  // a relative tolerance admits the drift
  const obs::BenchDiffOptions loose{.counterTolerance = 0.01};
  EXPECT_FALSE(
      obs::diffBenchReports(baseline, current, loose).hasRegression());
  // ...but never for the counterexample indicator
  obs::BenchReportFile flipped = makeReport("equivalent", 0.5, 1000);
  flipped.records[0].metrics.counters["flow.counterexample"] = 1;
  EXPECT_TRUE(
      obs::diffBenchReports(baseline, flipped, loose).hasRegression());
}

TEST(BenchDiff, TimedOutRecordsAreExemptButNewTimeoutFails) {
  const obs::BenchReportFile slowBase = makeReport("equivalent", 0.5, 1000, 1);
  const obs::BenchReportFile slowCur =
      makeReport("equivalent", 5.0, 999999, 1);
  // both timed out: time and counter drift are exempt
  EXPECT_FALSE(obs::diffBenchReports(slowBase, slowCur).hasRegression());

  const obs::BenchReportFile goodBase = makeReport("equivalent", 0.5, 1000);
  const obs::BenchReportFile newTimeout =
      makeReport("equivalent", 0.5, 1000, 1);
  EXPECT_TRUE(obs::diffBenchReports(goodBase, newTimeout).hasRegression());
}

TEST(BenchDiff, ConfigAndRecordSetMismatchesFail) {
  const obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  obs::BenchReportFile otherSeed = makeReport("equivalent", 0.5, 1000);
  otherSeed.seed = 7;
  EXPECT_TRUE(obs::diffBenchReports(baseline, otherSeed).hasRegression());

  obs::BenchReportFile missing = makeReport("equivalent", 0.5, 1000);
  missing.records.clear();
  EXPECT_TRUE(obs::diffBenchReports(baseline, missing).hasRegression());
  // extra records in current are informational only
  obs::BenchReportFile extra = makeReport("equivalent", 0.5, 1000);
  obs::BenchReportRecord added;
  added.name = "New bench";
  added.outcome = "equivalent";
  extra.records.push_back(added);
  EXPECT_FALSE(obs::diffBenchReports(baseline, extra).hasRegression());
}

TEST(BenchReport, HardwareConcurrencyIsOptional) {
  // reports that predate the field parse with hardwareConcurrency == 0
  const std::string withoutField = R"({
    "schema":"qsimec-bench-v1","harness":"h","timeout_seconds":10,
    "simulations":10,"seed":42,"threads":1,"paper_scale":false,
    "results":[]})";
  EXPECT_EQ(obs::parseBenchReport(withoutField).hardwareConcurrency, 0U);

  const std::string withField = R"({
    "schema":"qsimec-bench-v1","harness":"h","timeout_seconds":10,
    "simulations":10,"seed":42,"threads":1,"hardware_concurrency":16,
    "paper_scale":false,"results":[]})";
  EXPECT_EQ(obs::parseBenchReport(withField).hardwareConcurrency, 16U);
}

TEST(BenchDiff, CoreCountMismatchDowngradesPerThreadColumnsOnly) {
  // a tN column regression on a machine with a different core count is a
  // note, not a gate failure — but the plain ".seconds" totals still gate
  obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  baseline.hardwareConcurrency = 8;
  baseline.records[0].metrics.gauges["sim.seconds.t2"] = 0.5;

  obs::BenchReportFile current = baseline;
  current.hardwareConcurrency = 2;
  current.records[0].metrics.gauges["sim.seconds.t2"] = 2.0; // 4x slower

  obs::BenchDiffResult result = obs::diffBenchReports(baseline, current);
  EXPECT_FALSE(result.hasRegression());
  bool downgraded = false;
  for (const obs::DiffFinding& finding : result.findings) {
    downgraded = downgraded ||
                 (finding.severity == obs::DiffSeverity::Info &&
                  finding.message.find("sim.seconds.t2") != std::string::npos);
  }
  EXPECT_TRUE(downgraded);

  // the single-threaded totals are still comparable and still gate
  current.records[0].metrics.gauges["total.seconds"] = 5.0;
  result = obs::diffBenchReports(baseline, current);
  EXPECT_TRUE(result.hasRegression());

  // same core count (field present and equal): tN columns gate as before
  current.hardwareConcurrency = 8;
  current.records[0].metrics.gauges["total.seconds"] = 0.5;
  result = obs::diffBenchReports(baseline, current);
  EXPECT_TRUE(result.hasRegression());
}

TEST(BenchDiff, UnknownCoreCountAlsoDowngrades) {
  // baseline recorded before the field existed (0 = unknown) vs a current
  // report that has it: not comparable, downgrade rather than fail
  obs::BenchReportFile baseline = makeReport("equivalent", 0.5, 1000);
  baseline.records[0].metrics.gauges["sim.seconds.t4"] = 0.5;
  obs::BenchReportFile current = baseline;
  current.hardwareConcurrency = 4;
  current.records[0].metrics.gauges["sim.seconds.t4"] = 2.0;
  const obs::BenchDiffResult result = obs::diffBenchReports(baseline, current);
  EXPECT_FALSE(result.hasRegression());
}
