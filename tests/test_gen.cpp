// Benchmark generator tests: QFT (against the DFT matrix), Grover (success
// probability), supremacy-style circuits (structure), Hubbard-Trotter
// circuits (unitarity / locality), and the RevLib-like family.

#include "gen/chemistry.hpp"
#include "gen/grover.hpp"
#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "gen/algorithms.hpp"
#include "gen/revlib_like.hpp"
#include "gen/supremacy.hpp"
#include "sim/dd_simulator.hpp"
#include "synth/truth_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using namespace qsimec;

TEST(Qft, MatchesDftMatrix) {
  const std::size_t n = 3;
  const auto qc = gen::qft(n, true);
  dd::Package pkg(n);
  const auto u = sim::buildFunctionality(qc, pkg);
  const double dim = 8.0;
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 8; ++c) {
      const double angle = 2 * std::numbers::pi *
                           static_cast<double>(r * c % 8) / dim;
      const auto entry = pkg.getEntry(u, r, c);
      EXPECT_NEAR(entry.re, std::cos(angle) / std::sqrt(dim), 1e-9)
          << r << "," << c;
      EXPECT_NEAR(entry.im, std::sin(angle) / std::sqrt(dim), 1e-9)
          << r << "," << c;
    }
  }
}

TEST(Qft, InverseUndoesQft) {
  const std::size_t n = 4;
  ir::QuantumComputation both(n);
  both.append(gen::qft(n));
  const auto inv = gen::inverseQft(n);
  for (const auto& op : inv) {
    both.emplace(op);
  }
  dd::Package pkg(n);
  const auto u = sim::buildFunctionality(both, pkg);
  EXPECT_EQ(u, pkg.makeIdent());
}

TEST(Qft, ZeroInputGivesUniformSuperposition) {
  const std::size_t n = 6;
  dd::Package pkg(n);
  const auto out = sim::simulate(gen::qft(n), pkg.makeZeroState(), pkg);
  const double expected = 1.0 / std::sqrt(64.0);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto amp = pkg.getAmplitude(out, i);
    EXPECT_NEAR(amp.re, expected, 1e-9);
    EXPECT_NEAR(amp.im, 0.0, 1e-9);
  }
}

TEST(Qft, BasisStateStaysProductState) {
  // the paper's Table Ib shows QFT 48/64 simulating in fractions of a
  // second: on a basis state the QFT output is a product state, so the DD
  // stays small (near-linear in n; tolerance snapping at the deepest
  // rotation levels leaves a small constant factor).
  const std::size_t n = 32;
  dd::Package pkg(n);
  const auto out = sim::simulate(gen::qft(n), pkg.makeBasisState(12345), pkg);
  EXPECT_LE(dd::Package::size(out), 64 * n);
}

TEST(Qft, AlternativeRealizationIsEquivalent) {
  for (const std::size_t n : {3UL, 5UL, 7UL}) {
    const auto a = gen::qft(n);
    const auto b = gen::qftAlternative(n);
    EXPECT_NE(a.size(), b.size()); // structurally different
    dd::Package pkg(n);
    const auto ua = sim::buildFunctionality(a, pkg);
    pkg.incRef(ua);
    const auto ub = sim::buildFunctionality(b, pkg);
    EXPECT_EQ(ua, ub) << "n=" << n;
    pkg.decRef(ua);
  }
}

TEST(Grover, AmplifiesMarkedState) {
  const std::size_t k = 5;
  const std::uint64_t marked = 19;
  const auto qc = gen::grover(k, marked);
  dd::Package pkg(k);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  const double p = pkg.getAmplitude(out, marked).mag2();
  EXPECT_GT(p, 0.9);
}

TEST(Grover, AllMarkedStatesWork) {
  const std::size_t k = 3;
  for (std::uint64_t marked = 0; marked < 8; ++marked) {
    const auto qc = gen::grover(k, marked);
    dd::Package pkg(k);
    const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
    EXPECT_GT(pkg.getAmplitude(out, marked).mag2(), 0.5) << marked;
  }
}

TEST(Grover, Validation) {
  EXPECT_THROW((void)gen::grover(1, 0), std::invalid_argument);
  EXPECT_THROW((void)gen::grover(3, 8), std::invalid_argument);
}

TEST(Supremacy, StructureAndDeterminism) {
  const auto a = gen::supremacy(4, 4, 10, 42);
  const auto b = gen::supremacy(4, 4, 10, 42);
  EXPECT_EQ(a.ops(), b.ops()); // same seed => identical circuit
  EXPECT_EQ(a.qubits(), 16U);
  EXPECT_EQ(a.countType(ir::OpType::H), 16U); // initial layer
  EXPECT_GT(a.countType(ir::OpType::Z), 0U);  // CZ layers
  const auto c = gen::supremacy(4, 4, 10, 43);
  EXPECT_NE(a.ops(), c.ops()) << "different seeds, same circuit?";
}

TEST(Supremacy, CzRespectsGrid) {
  const auto qc = gen::supremacy(3, 3, 16, 7);
  for (const auto& op : qc) {
    if (op.type() == ir::OpType::Z && !op.controls().empty()) {
      const auto a = op.controls()[0].qubit;
      const auto b = op.target();
      const auto ra = a / 3;
      const auto ca = a % 3;
      const auto rb = b / 3;
      const auto cb = b % 3;
      EXPECT_EQ(std::abs(static_cast<int>(ra) - static_cast<int>(rb)) +
                    std::abs(static_cast<int>(ca) - static_cast<int>(cb)),
                1)
          << op;
    }
  }
}

TEST(Supremacy, EntanglesQuickly) {
  const auto qc = gen::supremacy(2, 3, 12, 3);
  dd::Package pkg(6);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  // a supremacy-style state is far from a product state
  EXPECT_GT(dd::Package::size(out), 6U);
}

TEST(Chemistry, QubitCountMatchesPaper) {
  const auto qc22 = gen::hubbardTrotter(2, 2);
  EXPECT_EQ(qc22.qubits(), 8U); // paper: Quantum Chemistry 2x2 has n = 8
  const auto qc33 = gen::hubbardTrotter(3, 3);
  EXPECT_EQ(qc33.qubits(), 18U); // paper: 3x3 has n = 18
}

TEST(Chemistry, EvolutionIsUnitaryAndNontrivial) {
  const auto qc = gen::hubbardTrotter(1, 2);
  dd::Package pkg(qc.qubits());
  const auto u = sim::buildFunctionality(qc, pkg);
  const auto udg = pkg.conjugateTranspose(u);
  EXPECT_EQ(pkg.multiply(udg, u), pkg.makeIdent());
  EXPECT_NE(u, pkg.makeIdent());
}

TEST(Chemistry, HoppingConservesParticleNumber) {
  // evolve a single-particle state; total occupation must stay 1
  const auto qc = gen::hubbardTrotter(1, 2, {.trotterSteps = 2});
  dd::Package pkg(qc.qubits());
  const auto out = sim::simulate(qc, pkg.makeBasisState(0b0001), pkg);
  double weightOnSingleParticle = 0;
  for (std::uint64_t i = 0; i < (1ULL << qc.qubits()); ++i) {
    if (std::popcount(i) == 1) {
      weightOnSingleParticle += pkg.getAmplitude(out, i).mag2();
    }
  }
  EXPECT_NEAR(weightOnSingleParticle, 1.0, 1e-9);
}

TEST(RevlibLike, CircuitsRealizeTheirFunctions) {
  EXPECT_EQ(synth::TruthTable::fromCircuit(gen::hwbCircuit(5)),
            synth::TruthTable::hiddenWeightedBit(5));
  EXPECT_EQ(synth::TruthTable::fromCircuit(gen::urfCircuit(4, 9)),
            synth::TruthTable::randomPermutation(4, 9));
  EXPECT_EQ(synth::TruthTable::fromCircuit(gen::adderCircuit(6)),
            synth::TruthTable::modularAdder(6));
  EXPECT_EQ(synth::TruthTable::fromCircuit(gen::incrementCircuit(5)),
            synth::TruthTable::increment(5));
}

TEST(Algorithms, BernsteinVaziraniRecoversSecret) {
  for (const std::uint64_t secret : {0b10110ULL, 0ULL, 0b11111ULL}) {
    const auto qc = gen::bernsteinVazirani(5, secret);
    dd::Package pkg(qc.qubits());
    const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
    double pSecret = 0;
    for (std::uint64_t anc = 0; anc < 2; ++anc) {
      pSecret += pkg.getAmplitude(out, secret | (anc << 5)).mag2();
    }
    EXPECT_NEAR(pSecret, 1.0, 1e-9) << secret;
  }
}

TEST(Algorithms, DeutschJozsaSeparatesConstantFromBalanced) {
  const std::size_t n = 4;
  // constant: inputs return to |0...0>
  {
    const auto qc = gen::deutschJozsa(n, false);
    dd::Package pkg(qc.qubits());
    const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
    double pZero = 0;
    for (std::uint64_t anc = 0; anc < 2; ++anc) {
      pZero += pkg.getAmplitude(out, anc << n).mag2();
    }
    EXPECT_NEAR(pZero, 1.0, 1e-9);
  }
  // balanced: zero amplitude on |0...0>
  {
    const auto qc = gen::deutschJozsa(n, true, 7);
    dd::Package pkg(qc.qubits());
    const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
    double pZero = 0;
    for (std::uint64_t anc = 0; anc < 2; ++anc) {
      pZero += pkg.getAmplitude(out, anc << n).mag2();
    }
    EXPECT_NEAR(pZero, 0.0, 1e-9);
  }
}

TEST(Algorithms, QpeRecoversExactPhases) {
  const std::size_t m = 4;
  for (const std::uint64_t k : {1ULL, 5ULL, 11ULL, 15ULL}) {
    const double phase = static_cast<double>(k) / 16.0;
    const auto qc = gen::qpe(m, phase);
    dd::Package pkg(qc.qubits());
    const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
    // counting register must hold k exactly (eigenstate qubit stays |1>)
    const double p = pkg.getAmplitude(out, k | (1ULL << m)).mag2();
    EXPECT_NEAR(p, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(Algorithms, QpeApproximatesInexactPhases) {
  const std::size_t m = 5;
  const double phase = 0.2; // no exact 5-bit expansion
  const auto qc = gen::qpe(m, phase);
  dd::Package pkg(qc.qubits());
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  const auto best = static_cast<std::uint64_t>(std::llround(phase * 32)) % 32;
  const double p = pkg.getAmplitude(out, best | (1ULL << m)).mag2();
  EXPECT_GT(p, 0.4); // the nearest estimate dominates
}

TEST(Algorithms, GhzAndWStates) {
  const std::size_t n = 5;
  dd::Package pkg(n);
  const auto ghz = sim::simulate(gen::ghzState(n), pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.getAmplitude(ghz, 0).mag2(), 0.5, 1e-9);
  EXPECT_NEAR(pkg.getAmplitude(ghz, (1ULL << n) - 1).mag2(), 0.5, 1e-9);

  const auto w = sim::simulate(gen::wState(n), pkg.makeZeroState(), pkg);
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(pkg.getAmplitude(w, 1ULL << q).mag2(), 1.0 / n, 1e-9)
        << "excitation " << q;
  }
  EXPECT_NEAR(pkg.getAmplitude(w, 0).mag2(), 0.0, 1e-12);
}

TEST(RandomCircuits, RespectOptions) {
  gen::RandomCircuitOptions options;
  options.rotations = false;
  options.twoQubit = false;
  options.toffoli = false;
  const auto qc = gen::randomCircuit(3, 50, 5, options);
  for (const auto& op : qc) {
    EXPECT_EQ(op.usedQubits().size(), 1U);
    EXPECT_EQ(ir::numParams(op.type()), 0U);
  }
  const auto ct = gen::randomCliffordT(4, 80, 6);
  for (const auto& op : ct) {
    EXPECT_LE(op.controls().size(), 1U);
  }
}
