// Lifecycle tests of the qsimec daemon (src/daemon): wire-protocol
// round-trips, warm-cache second submissions (zero checker dispatches,
// byte-identical redacted responses), priority ordering with a paused
// engine, admission control under overload, graceful drain (stop flag and
// shutdown op), cache warmth across a daemon restart, spool-directory
// intake, and the status / OpenMetrics endpoints. The daemon runs
// in-process; one test spawns the real binary and SIGTERMs it.

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "gen/qft.hpp"
#include "gen/revlib_like.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "obs/openmetrics.hpp"
#include "svc/batch.hpp"
#include "util/json_parse.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

namespace {

using namespace qsimec;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ------------------------------------------------------------------ protocol

TEST(DaemonProtocol, HeaderRoundTripAndDefaults) {
  daemon::RequestHeader header;
  header.op = daemon::RequestOp::Submit;
  header.client = "tester";
  header.priority = 1;
  header.redact = true;
  const daemon::RequestHeader back =
      daemon::parseRequestHeader(daemon::toJsonLine(header));
  EXPECT_EQ(back.op, daemon::RequestOp::Submit);
  EXPECT_EQ(back.client, "tester");
  EXPECT_EQ(back.priority, 1);
  EXPECT_TRUE(back.redact);

  // a bare submit line gets the documented defaults
  const daemon::RequestHeader bare = daemon::parseRequestHeader(
      "{\"schema\":\"qsimec-daemon-v1\",\"op\":\"submit\"}");
  EXPECT_EQ(bare.client, "anonymous");
  EXPECT_EQ(bare.priority, daemon::kDefaultPriority);
  EXPECT_FALSE(bare.redact);
}

TEST(DaemonProtocol, HeaderClampsAndRejects) {
  // out-of-range priorities clamp into [0, kPriorities)
  const daemon::RequestHeader low = daemon::parseRequestHeader(
      "{\"schema\":\"qsimec-daemon-v1\",\"op\":\"submit\",\"priority\":-3}");
  EXPECT_EQ(low.priority, 0);
  const daemon::RequestHeader high = daemon::parseRequestHeader(
      "{\"schema\":\"qsimec-daemon-v1\",\"op\":\"submit\",\"priority\":99}");
  EXPECT_EQ(high.priority, daemon::kPriorities - 1);

  EXPECT_THROW((void)daemon::parseRequestHeader("not json"),
               std::runtime_error);
  EXPECT_THROW((void)daemon::parseRequestHeader(
                   "{\"schema\":\"qsimec-daemon-v1\",\"op\":\"dance\"}"),
               std::runtime_error);
  EXPECT_THROW((void)daemon::parseRequestHeader(
                   "{\"schema\":\"some-other-v9\",\"op\":\"submit\"}"),
               std::runtime_error);
}

TEST(DaemonProtocol, AdmissionLineIsConstant) {
  // byte-determinism of a response stream hinges on the ack never varying
  EXPECT_EQ(daemon::acceptedLine(),
            "{\"schema\":\"qsimec-daemon-v1\",\"accepted\":true}");
  const std::string rejection = daemon::errorLine("overload", "queue full");
  EXPECT_NE(rejection.find("\"accepted\":false"), std::string::npos);
  EXPECT_NE(rejection.find("\"error\":\"overload\""), std::string::npos);
}

// ------------------------------------------------------------------- fixture

class DaemonTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("qsimec_daemon_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    write("qft_a.qasm", gen::qft(3));
    write("qft_b.qasm", gen::qftAlternative(3));
    write("inc.real", gen::incrementCircuit(3));
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& name, const ir::QuantumComputation& qc) {
    std::ofstream os(dir_ / name);
    if (name.ends_with(".real")) {
      io::writeReal(qc, os);
    } else {
      io::writeQasm(qc, os);
    }
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Two cacheable proofs: one equivalent pair, one distinct-circuit pair.
  [[nodiscard]] std::string manifestText() const {
    return "{\"g\": \"" + path("qft_a.qasm") + "\", \"gp\": \"" +
           path("qft_b.qasm") + "\"}\n"
           "{\"g\": \"" + path("inc.real") + "\", \"gp\": \"" +
           path("inc.real") + "\"}\n";
  }

  [[nodiscard]] daemon::DaemonOptions baseOptions() const {
    daemon::DaemonOptions options;
    options.socketPath = path("d.sock");
    options.threads = 2;
    options.base.complete.timeoutSeconds = 60.0;
    return options;
  }

  /// Poll the daemon until `completed` requests finished (engine work is
  /// asynchronous after a --no-wait submission).
  static void awaitCompleted(const daemon::Daemon& d, std::uint64_t completed,
                             std::chrono::seconds limit = 30s) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (d.completedRequests() < completed) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "daemon did not complete " << completed << " request(s)";
      std::this_thread::sleep_for(10ms);
    }
  }

  [[nodiscard]] static util::JsonValue status(const daemon::Daemon& d) {
    return util::parseJson(d.statusJson());
  }

  fs::path dir_;
};

// ------------------------------------------------------------------ lifecycle

TEST_F(DaemonTest, SubmitRoundTripMatchesADirectBatchRun) {
  // the daemon must be a transparent wrapper: same manifest, same verdict
  // lines (redacted form strips the provenance that legitimately differs)
  std::istringstream is(manifestText());
  ec::FlowConfiguration base;
  base.complete.timeoutSeconds = 60.0;
  const svc::BatchManifest manifest = svc::parseManifest(is, base);
  svc::BatchOptions direct;
  direct.threads = 2;
  svc::BatchScheduler scheduler(direct);
  const svc::BatchResult expected = scheduler.run(manifest);

  daemon::Daemon d(baseOptions());
  d.start();
  daemon::SubmitOptions submit;
  submit.redact = true;
  const daemon::SubmitResult result =
      daemon::submitManifestText(path("d.sock"), manifestText(), submit);
  ASSERT_TRUE(result.accepted) << result.error << ": " << result.message;
  ASSERT_EQ(result.lines.size(), expected.outcomes.size() + 1);
  const svc::BatchSerializeOptions redacted{true, true};
  for (std::size_t i = 0; i < expected.outcomes.size(); ++i) {
    EXPECT_EQ(result.lines[i], svc::toJsonLine(expected.outcomes[i], redacted));
  }
  EXPECT_EQ(result.lines.back(),
            svc::toJsonLine(expected.summary, redacted));
  EXPECT_EQ(daemon::submitExitCode(result), 0);

  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, WarmSecondSubmissionDispatchesNothingAndMatchesBytes) {
  daemon::Daemon d(baseOptions());
  d.start();
  daemon::SubmitOptions submit;
  submit.redact = true;
  submit.client = "first";
  const daemon::SubmitResult cold =
      daemon::submitManifestText(path("d.sock"), manifestText(), submit);
  ASSERT_TRUE(cold.accepted);

  submit.client = "second";
  const daemon::SubmitResult warm =
      daemon::submitManifestText(path("d.sock"), manifestText(), submit);
  ASSERT_TRUE(warm.accepted);

  // byte-identical response: the acceptance criterion of daemon warmth
  EXPECT_EQ(cold.lines, warm.lines);

  // and zero checker dispatches for the warm client — everything was
  // answered out of the resident cache
  const util::JsonValue doc = status(d);
  EXPECT_EQ(doc.at("pairs").at("cache_hits").asUint(), 2U);
  const util::JsonValue& second = doc.at("clients").at("second");
  EXPECT_EQ(second.at("dispatched").asUint(), 0U);
  EXPECT_EQ(second.at("cache_hits").asUint(), 2U);
  const util::JsonValue& first = doc.at("clients").at("first");
  EXPECT_EQ(first.at("dispatched").asUint(), 2U);

  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, PausedEngineDrainsByPriorityThenFifo) {
  daemon::DaemonOptions options = baseOptions();
  options.agingSeconds = 0; // keep priorities exact for the assertion
  daemon::Daemon d(options);
  d.start();
  d.pauseEngine();

  const auto submit = [&](const std::string& client, int priority) {
    daemon::SubmitOptions s;
    s.client = client;
    s.priority = priority;
    s.wait = false; // the engine is paused; only collect the admission ack
    const daemon::SubmitResult r =
        daemon::submitManifestText(path("d.sock"), manifestText(), s);
    ASSERT_TRUE(r.accepted) << client << ": " << r.error;
  };
  submit("late", 3); // admitted first, but least urgent
  submit("urgent_one", 1);
  submit("urgent_two", 1);

  d.resumeEngine();
  awaitCompleted(d, 3);

  // recent[] is newest-first: the low-priority request finished last, the
  // two urgent ones ran in admission (FIFO) order
  const util::JsonValue doc = status(d);
  const auto& recent = doc.at("recent").elements();
  ASSERT_EQ(recent.size(), 3U);
  EXPECT_EQ(recent[0].at("client").asString(), "late");
  EXPECT_EQ(recent[1].at("client").asString(), "urgent_two");
  EXPECT_EQ(recent[2].at("client").asString(), "urgent_one");

  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, OverloadIsAnExplicitRejectionNotAHang) {
  daemon::DaemonOptions options = baseOptions();
  options.maxQueueDepth = 1;
  daemon::Daemon d(options);
  d.start();
  d.pauseEngine();

  daemon::SubmitOptions fireAndForget;
  fireAndForget.wait = false;
  const daemon::SubmitResult first = daemon::submitManifestText(
      path("d.sock"), manifestText(), fireAndForget);
  ASSERT_TRUE(first.accepted);

  // the queue is at capacity and the engine is paused: the answer must be
  // an immediate overload line, never a wait
  const daemon::SubmitResult second = daemon::submitManifestText(
      path("d.sock"), manifestText(), fireAndForget);
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.error, "overload");
  EXPECT_EQ(d.rejectedRequests(), 1U);
  EXPECT_EQ(daemon::submitExitCode(second), 5);

  d.resumeEngine();
  awaitCompleted(d, 1);
  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, DrainFinishesEveryAdmittedRequest) {
  daemon::Daemon d(baseOptions());
  d.start();
  d.pauseEngine();

  daemon::SubmitOptions fireAndForget;
  fireAndForget.wait = false;
  for (int i = 0; i < 2; ++i) {
    const daemon::SubmitResult r = daemon::submitManifestText(
        path("d.sock"), manifestText(), fireAndForget);
    ASSERT_TRUE(r.accepted);
  }

  // the drain overrides the pause and answers both requests before run()
  // returns — admitted work is a promise
  d.requestShutdown();
  d.run();
  EXPECT_EQ(d.completedRequests(), 2U);
}

TEST_F(DaemonTest, StopFlagTriggersTheSameGracefulDrain) {
  std::atomic<bool> stop{false};
  daemon::DaemonOptions options = baseOptions();
  options.stopFlag = &stop; // the CLI's SIGTERM handler, simulated
  daemon::Daemon d(options);
  d.start();
  const daemon::SubmitResult r =
      daemon::submitManifestText(path("d.sock"), manifestText());
  ASSERT_TRUE(r.accepted);
  stop.store(true);
  d.run(); // returns once the acceptor notices the flag and drains
  EXPECT_EQ(d.completedRequests(), 1U);
  EXPECT_FALSE(fs::exists(path("d.sock"))) << "socket file must be removed";
}

TEST_F(DaemonTest, CacheWarmthSurvivesARestart) {
  daemon::DaemonOptions options = baseOptions();
  options.cachePath = path("cache.jsonl");
  {
    daemon::Daemon d(options);
    d.start();
    const daemon::SubmitResult r =
        daemon::submitManifestText(path("d.sock"), manifestText());
    ASSERT_TRUE(r.accepted);
    d.requestShutdown();
    d.run();
  }
  ASSERT_TRUE(fs::exists(path("cache.jsonl")));

  // a fresh daemon process (same cache file) must answer the same manifest
  // without dispatching a single checker job
  daemon::Daemon restarted(options);
  restarted.start();
  const daemon::SubmitResult warm =
      daemon::submitManifestText(path("d.sock"), manifestText());
  ASSERT_TRUE(warm.accepted);
  const util::JsonValue doc = status(restarted);
  EXPECT_EQ(doc.at("pairs").at("dispatched").asUint(), 0U);
  EXPECT_EQ(doc.at("pairs").at("cache_hits").asUint(), 2U);
  restarted.requestShutdown();
  restarted.run();
}

TEST_F(DaemonTest, SpoolManifestIsProcessedEndToEnd) {
  daemon::DaemonOptions options = baseOptions();
  options.spoolDir = path("spool");
  options.spoolPollSeconds = 0.05;
  daemon::Daemon d(options);
  d.start();

  // land the manifest atomically: write elsewhere, rename into in/
  std::ofstream(dir_ / "job1.tmp") << manifestText();
  fs::rename(dir_ / "job1.tmp", dir_ / "spool" / "in" / "job1.jsonl");

  const fs::path results = dir_ / "spool" / "out" / "job1.results.jsonl";
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!fs::exists(dir_ / "spool" / "done" / "job1.jsonl")) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "spool manifest was not processed";
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(fs::exists(results));
  std::ifstream is(results);
  std::stringstream text;
  text << is.rdbuf();
  EXPECT_NE(text.str().find("\"equivalence\":\"equivalent\""),
            std::string::npos);
  EXPECT_NE(text.str().find("\"summary\":true"), std::string::npos);
  EXPECT_TRUE(fs::is_empty(dir_ / "spool" / "in"));
  EXPECT_TRUE(fs::is_empty(dir_ / "spool" / "work"));

  const util::JsonValue doc = status(d);
  EXPECT_EQ(doc.at("clients").at("spool").at("pairs").asUint(), 2U);
  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, UnparseableSpoolManifestLandsInFailed) {
  daemon::DaemonOptions options = baseOptions();
  options.spoolDir = path("spool");
  options.spoolPollSeconds = 0.05;
  daemon::Daemon d(options);
  d.start();

  std::ofstream(dir_ / "bad.tmp") << "this is not a manifest\n";
  fs::rename(dir_ / "bad.tmp", dir_ / "spool" / "in" / "bad.jsonl");

  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!fs::exists(dir_ / "spool" / "failed" / "bad.jsonl")) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "bad manifest was not quarantined";
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(fs::exists(dir_ / "spool" / "failed" / "bad.error.txt"));
  EXPECT_TRUE(fs::is_empty(dir_ / "spool" / "out"));
  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, BadSocketManifestGetsAnExplicitErrorLine) {
  daemon::Daemon d(baseOptions());
  d.start();
  const daemon::SubmitResult r =
      daemon::submitManifestText(path("d.sock"), "definitely not json\n");
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.error, "manifest");
  EXPECT_EQ(daemon::submitExitCode(r), 5);
  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, StatusAndMetricsEndpointsAreWellFormed) {
  daemon::Daemon d(baseOptions());
  d.start();
  const daemon::SubmitResult r =
      daemon::submitManifestText(path("d.sock"), manifestText());
  ASSERT_TRUE(r.accepted);

  // the status document over the socket and the in-process one agree on
  // schema and counters
  const util::JsonValue doc =
      util::parseJson(daemon::fetchStatus(path("d.sock")));
  EXPECT_EQ(doc.at("schema").asString(), "qsimec-daemon-status-v1");
  EXPECT_EQ(doc.at("state").asString(), "running");
  EXPECT_EQ(doc.at("queue").at("depth").asUint(), 0U);
  EXPECT_EQ(doc.at("requests").at("completed").asUint(), 1U);
  EXPECT_EQ(doc.at("pairs").at("total").asUint(), 2U);
  EXPECT_GE(doc.at("cache").at("size").asUint(), 2U);
  EXPECT_EQ(doc.at("queue").at("by_priority").elements().size(),
            static_cast<std::size_t>(daemon::kPriorities));

  // the OpenMetrics scrape passes the promtool-style validator and carries
  // the daemon and cache families
  const std::string metrics = daemon::fetchMetrics(path("d.sock"));
  const auto issues = obs::validateOpenMetrics(metrics);
  EXPECT_TRUE(issues.empty())
      << (issues.empty() ? "" : issues.front().message);
  EXPECT_NE(metrics.find("daemon_requests_completed"), std::string::npos);
  EXPECT_NE(metrics.find("svc_cache_size"), std::string::npos);
  EXPECT_NE(metrics.find("svc_pairs_dispatched"), std::string::npos);

  d.requestShutdown();
  d.run();
}

TEST_F(DaemonTest, ShutdownOpDrainsTheDaemon) {
  daemon::Daemon d(baseOptions());
  d.start();
  EXPECT_TRUE(daemon::sendShutdown(path("d.sock")));
  d.run();
  EXPECT_EQ(d.completedRequests(), 0U);
}

// ------------------------------------------------------------- real process

TEST_F(DaemonTest, SigtermDrainsTheRealBinaryToExitZero) {
  // the full ops contract in one subshell: serve in the background, give
  // it a request, SIGTERM it, and demand exit code 0 from the drain
  const std::string script =
      "set -e\n"
      "SOCK=" + path("real.sock") + "\n" +
      std::string(QSIMEC_CLI_PATH) + " serve --socket $SOCK 2>/dev/null &\n"
      "PID=$!\n"
      "for i in $(seq 1 50); do [ -S $SOCK ] && break; sleep 0.1; done\n" +
      std::string(QSIMEC_CLI_PATH) + " submit " + path("m.jsonl") +
      " --socket $SOCK >/dev/null\n"
      "kill -TERM $PID\n"
      "wait $PID\n";
  std::ofstream(dir_ / "m.jsonl") << manifestText();
  std::ofstream(dir_ / "drain.sh") << script;
  const int status =
      std::system(("sh " + path("drain.sh") + " 2>&1").c_str());
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

} // namespace
