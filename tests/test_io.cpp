// I/O tests: OpenQASM 2.0 and RevLib .real parsing/writing, round trips,
// and error reporting.

#include "ec/construction_checker.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"

#include <gtest/gtest.h>

#include <numbers>

using namespace qsimec;

TEST(QasmParser, MinimalCircuit) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0],q[1];
    measure q -> c;
  )");
  EXPECT_EQ(qc.qubits(), 2U);
  ASSERT_EQ(qc.size(), 2U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::H);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::X);
  ASSERT_EQ(qc.at(1).controls().size(), 1U);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 0);
}

TEST(QasmParser, ParameterExpressions) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[1];
    rz(pi/2) q[0];
    rx(-pi) q[0];
    u3(pi/4, 2*pi, 0.5 - 1/4) q[0];
    u1((pi)) q[0];
  )");
  ASSERT_EQ(qc.size(), 4U);
  EXPECT_DOUBLE_EQ(qc.at(0).param(0), std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(qc.at(1).param(0), -std::numbers::pi);
  EXPECT_DOUBLE_EQ(qc.at(2).param(0), std::numbers::pi / 4);
  EXPECT_DOUBLE_EQ(qc.at(2).param(1), 2 * std::numbers::pi);
  EXPECT_DOUBLE_EQ(qc.at(2).param(2), 0.25);
  EXPECT_DOUBLE_EQ(qc.at(3).param(0), std::numbers::pi);
}

TEST(QasmParser, RegisterBroadcast) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[3];
    h q;
    cx q[0],q[1];
  )");
  EXPECT_EQ(qc.size(), 4U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::H);
  EXPECT_EQ(qc.at(2).target(), 2);
}

TEST(QasmParser, MultipleRegistersConcatenate) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg a[2];
    qreg b[2];
    x b[1];
  )");
  EXPECT_EQ(qc.qubits(), 4U);
  EXPECT_EQ(qc.at(0).target(), 3); // b[1] = offset 2 + 1
}

TEST(QasmParser, ControlledGateFamily) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[3];
    ccx q[0],q[1],q[2];
    cswap q[0],q[1],q[2];
    crz(0.5) q[0],q[1];
    cu1(0.25) q[1],q[2];
  )");
  ASSERT_EQ(qc.size(), 4U);
  EXPECT_EQ(qc.at(0).controls().size(), 2U);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::SWAP);
  EXPECT_EQ(qc.at(1).controls().size(), 1U);
  EXPECT_EQ(qc.at(2).type(), ir::OpType::RZ);
  EXPECT_EQ(qc.at(3).type(), ir::OpType::Phase);
}

TEST(QasmParser, GateDefinitions) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[3];
    gate mygate(theta) a, b {
      h a;
      cx a, b;
      rz(theta/2) b;
      cx a, b;
    }
    mygate(pi) q[0], q[2];
  )");
  ASSERT_EQ(qc.size(), 4U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::H);
  EXPECT_EQ(qc.at(0).target(), 0);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 0);
  EXPECT_EQ(qc.at(1).target(), 2);
  EXPECT_DOUBLE_EQ(qc.at(2).param(0), std::numbers::pi / 2);
}

TEST(QasmParser, NestedGateDefinitions) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[2];
    gate inner a { h a; t a; }
    gate outer a, b { inner a; cx a, b; inner b; }
    outer q[0], q[1];
  )");
  ASSERT_EQ(qc.size(), 5U);
  EXPECT_EQ(qc.at(2).type(), ir::OpType::X);
  EXPECT_EQ(qc.at(4).type(), ir::OpType::T);
}

TEST(QasmParser, GateDefinitionErrors) {
  // redefinition
  EXPECT_THROW((void)io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[1];
    gate h a { x a; }
  )"),
               io::QasmParseError);
  // unknown qubit inside the body
  EXPECT_THROW((void)io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[1];
    gate g a { x b; }
    g q[0];
  )"),
               io::QasmParseError);
  // wrong arity at application
  EXPECT_THROW((void)io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[2];
    gate g a { x a; }
    g q[0], q[1];
  )"),
               io::QasmParseError);
}

TEST(QasmParser, GateDefinitionBroadcast) {
  const auto qc = io::parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[3];
    gate g a { h a; s a; }
    g q;
  )");
  EXPECT_EQ(qc.size(), 6U);
}

TEST(QasmParser, ErrorsCarryLineNumbers) {
  try {
    (void)io::parseQasmString("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n");
    FAIL() << "expected QasmParseError";
  } catch (const io::QasmParseError& e) {
    EXPECT_EQ(e.line(), 3U);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(QasmParser, RejectsBadInput) {
  EXPECT_THROW((void)io::parseQasmString("qreg q[2];"), io::QasmParseError);
  EXPECT_THROW((void)io::parseQasmString("OPENQASM 2.0; qreg q[0];"),
               io::QasmParseError);
  EXPECT_THROW(
      (void)io::parseQasmString("OPENQASM 2.0; qreg q[2]; h q[5];"),
      io::QasmParseError);
  EXPECT_THROW(
      (void)io::parseQasmString("OPENQASM 2.0; qreg q[2]; cx q[0];"),
      io::QasmParseError);
}

TEST(QasmWriter, RoundTripPreservesFunctionality) {
  ir::QuantumComputation qc(3, "roundtrip");
  qc.h(0);
  qc.cx(0, 1);
  qc.rz(0.7, 2);
  qc.ccx(0, 1, 2);
  qc.swap(0, 2);
  qc.u3(0.1, 0.2, 0.3, 1);
  qc.phase(0.9, 2, {ir::Control{0, true}});

  const std::string text = io::toQasmString(qc);
  const auto parsed = io::parseQasmString(text);
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(qc, parsed).equivalence, ec::Equivalence::Equivalent);
}

TEST(QasmWriter, PhaseEquivalentGatesRoundTrip) {
  ir::QuantumComputation qc(1);
  qc.v(0);
  qc.sy(0);
  qc.vdg(0);
  qc.sydg(0);
  const auto parsed = io::parseQasmString(io::toQasmString(qc));
  const ec::ConstructionChecker checker;
  EXPECT_TRUE(ec::provedEquivalent(checker.run(qc, parsed).equivalence));
}

TEST(QasmWriter, RejectsInexpressibleGates) {
  ir::QuantumComputation qc(4);
  qc.x(0, {ir::Control{1, true}, ir::Control{2, true}, ir::Control{3, true}});
  EXPECT_THROW(io::toQasmString(qc), std::domain_error);

  ir::QuantumComputation neg(2);
  neg.x(0, {ir::Control{1, false}});
  EXPECT_THROW(io::toQasmString(neg), std::domain_error);
}

TEST(RealParser, ToffoliGates) {
  const auto qc = io::parseRealString(R"(
# a comment
.version 2.0
.numvars 3
.variables a b c
.begin
t1 c
t2 a c
t3 a b c
f2 a b
.end
)");
  EXPECT_EQ(qc.qubits(), 3U);
  ASSERT_EQ(qc.size(), 4U);
  // first variable a = qubit 2 (MSB), c = qubit 0
  EXPECT_EQ(qc.at(0).type(), ir::OpType::X);
  EXPECT_EQ(qc.at(0).target(), 0);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 2);
  EXPECT_EQ(qc.at(2).controls().size(), 2U);
  EXPECT_EQ(qc.at(3).type(), ir::OpType::SWAP);
}

TEST(RealParser, NegativeControlsAndV) {
  const auto qc = io::parseRealString(R"(
.version 2.0
.numvars 2
.variables x1 x0
.begin
t2 -x1 x0
v2 x1 x0
v+2 x1 x0
.end
)");
  ASSERT_EQ(qc.size(), 3U);
  EXPECT_FALSE(qc.at(0).controls()[0].positive);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::V);
  EXPECT_EQ(qc.at(2).type(), ir::OpType::Vdg);
}

TEST(RealParser, Errors) {
  EXPECT_THROW((void)io::parseRealString(".numvars 2\n.variables a\n"),
               io::RealParseError);
  EXPECT_THROW(
      (void)io::parseRealString(
          ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n"),
      io::RealParseError);
  EXPECT_THROW((void)io::parseRealString(
                   ".numvars 2\n.variables a b\n.begin\nt1 a\n"),
               io::RealParseError);
}

TEST(RealWriter, RoundTrip) {
  ir::QuantumComputation qc(4, "revtest");
  qc.x(0);
  qc.cx(3, 1);
  qc.x(2, {ir::Control{0, true}, ir::Control{3, false}});
  qc.swap(1, 2, {ir::Control{0, true}});
  qc.v(1, {ir::Control{2, true}});
  qc.vdg(1);

  const std::string text = io::toRealString(qc);
  const auto parsed = io::parseRealString(text);
  ASSERT_EQ(parsed.size(), qc.size());
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(qc, parsed).equivalence, ec::Equivalence::Equivalent);
}

TEST(RealWriter, RejectsNonReversibleGates) {
  ir::QuantumComputation qc(1);
  qc.h(0);
  EXPECT_THROW(io::toRealString(qc), std::domain_error);
}
