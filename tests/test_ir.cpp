// Circuit IR tests: construction, validation, inversion, permutations,
// statistics, and printing.

#include "ir/quantum_computation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include <sstream>

using namespace qsimec::ir;

TEST(Operation, ValidatesTargets) {
  EXPECT_THROW(StandardOperation(OpType::H, {}), std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::SWAP, {1}), std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::SWAP, {1, 1}), std::invalid_argument);
  EXPECT_NO_THROW(StandardOperation(OpType::SWAP, {0, 1}));
}

TEST(Operation, ValidatesControls) {
  EXPECT_THROW(StandardOperation(OpType::X, {0}, {Control{0, true}}),
               std::invalid_argument);
  EXPECT_THROW(
      StandardOperation(OpType::X, {0}, {Control{1, true}, Control{1, false}}),
      std::invalid_argument);
}

TEST(Operation, ControlsAreSorted) {
  const StandardOperation op(OpType::X, {0},
                             {Control{3, true}, Control{1, false}});
  ASSERT_EQ(op.controls().size(), 2U);
  EXPECT_EQ(op.controls()[0].qubit, 1);
  EXPECT_EQ(op.controls()[1].qubit, 3);
}

TEST(Operation, ActsOnAndUsedQubits) {
  const StandardOperation op(OpType::X, {0}, {Control{2, true}});
  EXPECT_TRUE(op.actsOn(0));
  EXPECT_TRUE(op.actsOn(2));
  EXPECT_FALSE(op.actsOn(1));
  EXPECT_EQ(op.maxQubit(), 2);
}

TEST(Operation, SelfInverseGates) {
  for (const OpType t : {OpType::H, OpType::X, OpType::Y, OpType::Z}) {
    const StandardOperation op(t, {0});
    EXPECT_EQ(op.inverse(), op);
    EXPECT_TRUE(op.isInverseOf(op));
  }
}

TEST(Operation, PairedInverses) {
  const StandardOperation s(OpType::S, {1});
  EXPECT_EQ(s.inverse().type(), OpType::Sdg);
  EXPECT_TRUE(s.isInverseOf(StandardOperation(OpType::Sdg, {1})));
  EXPECT_FALSE(s.isInverseOf(StandardOperation(OpType::Sdg, {0})));

  const StandardOperation rx(OpType::RX, {0}, {}, {0.5, 0, 0});
  EXPECT_DOUBLE_EQ(rx.inverse().param(0), -0.5);
  EXPECT_TRUE(rx.isInverseOf(StandardOperation(OpType::RX, {0}, {}, {-0.5, 0, 0})));
  EXPECT_FALSE(rx.isInverseOf(StandardOperation(OpType::RX, {0}, {}, {0.5, 0, 0})));
}

TEST(Operation, U3Inverse) {
  const StandardOperation u(OpType::U3, {0}, {}, {0.3, 0.6, 0.9});
  const StandardOperation inv = u.inverse();
  EXPECT_DOUBLE_EQ(inv.param(0), -0.3);
  EXPECT_DOUBLE_EQ(inv.param(1), -0.9);
  EXPECT_DOUBLE_EQ(inv.param(2), -0.6);
}

TEST(Computation, BuilderAndCounts) {
  QuantumComputation qc(3, "demo");
  qc.h(0);
  qc.cx(0, 1);
  qc.ccx(0, 1, 2);
  qc.rz(0.25, 2);
  qc.swap(0, 2);
  EXPECT_EQ(qc.size(), 5U);
  EXPECT_EQ(qc.countType(OpType::X), 2U);
  EXPECT_EQ(qc.countType(OpType::RZ), 1U);
  EXPECT_EQ(qc.twoQubitGateCount(), 2U); // cx and swap
}

TEST(Computation, RejectsOutOfRangeQubits) {
  QuantumComputation qc(2);
  EXPECT_THROW(qc.h(2), std::out_of_range);
  EXPECT_THROW(qc.cx(0, 3), std::out_of_range);
}

TEST(Computation, DepthCountsCriticalPath) {
  QuantumComputation qc(3);
  qc.h(0);
  qc.h(1); // parallel with the first
  qc.cx(0, 1);
  qc.h(2); // parallel with everything above
  EXPECT_EQ(qc.depth(), 2U);
}

TEST(Computation, InverseReversesAndInverts) {
  QuantumComputation qc(2);
  qc.h(0);
  qc.s(1);
  qc.cx(0, 1);
  const QuantumComputation inv = qc.inverse();
  ASSERT_EQ(inv.size(), 3U);
  EXPECT_EQ(inv.at(0).type(), OpType::X); // the CX first
  EXPECT_EQ(inv.at(1).type(), OpType::Sdg);
  EXPECT_EQ(inv.at(2).type(), OpType::H);
}

TEST(Computation, AppendChecksCompatibility) {
  QuantumComputation a(2);
  QuantumComputation b(3);
  EXPECT_THROW(a.append(b), std::invalid_argument);
  QuantumComputation c(2);
  c.x(0);
  a.append(c);
  EXPECT_EQ(a.size(), 1U);
}

TEST(Computation, PrintsReadably) {
  QuantumComputation qc(2, "printer");
  qc.h(0);
  qc.cx(1, 0);
  std::ostringstream ss;
  ss << qc;
  const std::string s = ss.str();
  EXPECT_NE(s.find("printer"), std::string::npos);
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("cx q1,q0"), std::string::npos);
}

TEST(Computation, MaterializedLayoutsAreTrivial) {
  QuantumComputation qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.setInitialLayout(Permutation({1, 0, 2}));
  qc.setOutputPermutation(Permutation({2, 1, 0}));
  const auto flat = qc.withMaterializedLayouts();
  EXPECT_TRUE(flat.initialLayout().isIdentity());
  EXPECT_TRUE(flat.outputPermutation().isIdentity());
  EXPECT_GT(flat.size(), qc.size()); // boundary swaps were added
}

TEST(PermutationTest, IdentityByDefault) {
  const Permutation p(4);
  EXPECT_TRUE(p.isIdentity());
  EXPECT_TRUE(p.toSwaps().empty());
}

TEST(PermutationTest, RejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, 5, 1}), std::invalid_argument);
}

TEST(PermutationTest, InverseComposesToIdentity) {
  const Permutation p({2, 0, 1, 3});
  const Permutation inv = p.inverse();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inv[p[i]], i);
  }
}

TEST(PermutationTest, ToSwapsRealizesPermutation) {
  const Permutation p({2, 0, 1, 3});
  // replay the swaps on an explicit wire assignment
  std::vector<std::uint16_t> wireOf(4);
  std::iota(wireOf.begin(), wireOf.end(), 0);
  std::vector<std::uint16_t> logicalOn(4);
  std::iota(logicalOn.begin(), logicalOn.end(), 0);
  for (const auto& [a, b] : p.toSwaps()) {
    const auto la = logicalOn[a];
    const auto lb = logicalOn[b];
    std::swap(logicalOn[a], logicalOn[b]);
    wireOf[la] = b;
    wireOf[lb] = a;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wireOf[i], p[i]) << "logical " << i;
  }
}
