// Simulator tests: the DD-based engine is validated against the independent
// dense state-vector simulator on hand-built and random circuits, including
// circuits with non-trivial layouts.

#include "sim/dd_simulator.hpp"
#include "sim/dense_simulator.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace qsimec;

namespace {

/// Random circuit over the full IR gate set.
ir::QuantumComputation randomCircuit(std::size_t nqubits, std::size_t ngates,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> qubit(0, nqubits - 1);
  std::uniform_real_distribution<double> angle(-3.14, 3.14);
  std::uniform_int_distribution<int> kind(0, 11);

  ir::QuantumComputation qc(nqubits, "random");
  for (std::size_t g = 0; g < ngates; ++g) {
    const auto q = static_cast<ir::Qubit>(qubit(rng));
    switch (kind(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.x(q);
      break;
    case 2:
      qc.t(q);
      break;
    case 3:
      qc.s(q);
      break;
    case 4:
      qc.rx(angle(rng), q);
      break;
    case 5:
      qc.ry(angle(rng), q);
      break;
    case 6:
      qc.rz(angle(rng), q);
      break;
    case 7:
      qc.u3(angle(rng), angle(rng), angle(rng), q);
      break;
    case 8: { // CX
      auto c = static_cast<ir::Qubit>(qubit(rng));
      if (c == q) {
        c = static_cast<ir::Qubit>((c + 1) % nqubits);
      }
      qc.cx(c, q);
      break;
    }
    case 9: { // negative-control phase
      auto c = static_cast<ir::Qubit>(qubit(rng));
      if (c == q) {
        c = static_cast<ir::Qubit>((c + 1) % nqubits);
      }
      qc.phase(angle(rng), q, {ir::Control{c, false}});
      break;
    }
    case 10: { // SWAP
      auto b = static_cast<ir::Qubit>(qubit(rng));
      if (b == q) {
        b = static_cast<ir::Qubit>((b + 1) % nqubits);
      }
      qc.swap(q, b);
      break;
    }
    default: { // Toffoli (needs 3 qubits)
      if (nqubits < 3) {
        qc.h(q);
        break;
      }
      auto c0 = static_cast<ir::Qubit>(qubit(rng));
      auto c1 = static_cast<ir::Qubit>(qubit(rng));
      if (c0 == q) {
        c0 = static_cast<ir::Qubit>((q + 1) % nqubits);
      }
      if (c1 == q || c1 == c0) {
        c1 = static_cast<ir::Qubit>(
            (std::max(q, c0) + 1) % nqubits == q ||
                    (std::max(q, c0) + 1) % nqubits == c0
                ? (std::max(q, c0) + 2) % nqubits
                : (std::max(q, c0) + 1) % nqubits);
      }
      if (c1 == q || c1 == c0) {
        qc.h(q);
        break;
      }
      qc.ccx(c0, c1, q);
      break;
    }
    }
  }
  return qc;
}

void expectStatesMatch(dd::Package& pkg, const dd::vEdge& ddState,
                       const std::vector<sim::Amplitude>& dense,
                       double eps = 1e-9) {
  for (std::uint64_t i = 0; i < dense.size(); ++i) {
    const dd::ComplexValue amp = pkg.getAmplitude(ddState, i);
    EXPECT_NEAR(amp.re, dense[i].real(), eps) << "index " << i;
    EXPECT_NEAR(amp.im, dense[i].imag(), eps) << "index " << i;
  }
}

} // namespace

TEST(DDSimulator, GHZState) {
  ir::QuantumComputation qc(3);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  dd::Package pkg(3);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.getAmplitude(out, 0b000).re, dd::SQRT1_2, 1e-12);
  EXPECT_NEAR(pkg.getAmplitude(out, 0b111).re, dd::SQRT1_2, 1e-12);
  EXPECT_NEAR(pkg.fidelity(out, out), 1.0, 1e-12);
}

TEST(DDSimulator, SwapOperation) {
  ir::QuantumComputation qc(2);
  qc.x(0);
  qc.swap(0, 1);
  dd::Package pkg(2);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(0b10)), 1.0, 1e-12);
}

TEST(DDSimulator, ControlledSwapFredkin) {
  ir::QuantumComputation qc(3);
  qc.swap(0, 1, {ir::Control{2, true}});
  dd::Package pkg(3);
  // control off: nothing happens
  auto out = sim::simulate(qc, pkg.makeBasisState(0b001), pkg);
  EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(0b001)), 1.0, 1e-12);
  // control on: qubits 0 and 1 exchange
  out = sim::simulate(qc, pkg.makeBasisState(0b101), pkg);
  EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(0b110)), 1.0, 1e-12);
}

TEST(DDSimulator, RejectsMismatchedPackage) {
  ir::QuantumComputation qc(3);
  dd::Package pkg(2);
  EXPECT_THROW((void)sim::simulate(qc, pkg.makeZeroState(), pkg),
               std::invalid_argument);
}

TEST(DDSimulator, MatchesDenseOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto qc = randomCircuit(5, 60, seed);
    dd::Package pkg(5);
    for (const std::uint64_t input : {0ULL, 7ULL, 31ULL}) {
      const auto ddOut = sim::simulate(qc, pkg.makeBasisState(input), pkg);
      const auto dense = sim::DenseSimulator::simulate(qc, input);
      expectStatesMatch(pkg, ddOut, dense);
    }
  }
}

TEST(DDSimulator, BuildFunctionalityMatchesDense) {
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    const auto qc = randomCircuit(4, 40, seed);
    dd::Package pkg(4);
    const auto u = sim::buildFunctionality(qc, pkg);
    const auto dense = sim::DenseSimulator::buildMatrix(qc);
    for (std::uint64_t r = 0; r < 16; ++r) {
      for (std::uint64_t c = 0; c < 16; ++c) {
        const auto e = pkg.getEntry(u, r, c);
        EXPECT_NEAR(e.re, dense[r][c].real(), 1e-9) << r << "," << c;
        EXPECT_NEAR(e.im, dense[r][c].imag(), 1e-9) << r << "," << c;
      }
    }
  }
}

TEST(DDSimulator, FunctionalityEqualsColumnwiseSimulation) {
  // the core identity behind the paper: column i of U = U |i>
  const auto qc = randomCircuit(4, 30, 99);
  dd::Package pkg(4);
  const auto u = sim::buildFunctionality(qc, pkg);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto col = sim::simulate(qc, pkg.makeBasisState(i), pkg);
    for (std::uint64_t r = 0; r < 16; ++r) {
      const auto fromU = pkg.getEntry(u, r, i);
      const auto fromSim = pkg.getAmplitude(col, r);
      EXPECT_NEAR(fromU.re, fromSim.re, 1e-9);
      EXPECT_NEAR(fromU.im, fromSim.im, 1e-9);
    }
  }
}

TEST(DDSimulator, InitialLayoutIsHonoured) {
  // layout: logical 0 -> wire 1, logical 1 -> wire 0. X on wire 1 then acts
  // on logical qubit 0.
  ir::QuantumComputation qc(2);
  qc.setInitialLayout(ir::Permutation({1, 0}));
  qc.setOutputPermutation(ir::Permutation({1, 0}));
  qc.x(1);
  dd::Package pkg(2);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(0b01)), 1.0, 1e-12);
  // dense oracle agrees
  const auto dense = sim::DenseSimulator::simulate(qc, 0);
  expectStatesMatch(pkg, out, dense);
}

TEST(DDSimulator, OutputPermutationIsHonoured) {
  // circuit ends with its qubits swapped on the wires; declaring the output
  // permutation restores logical identity.
  ir::QuantumComputation qc(2);
  qc.x(0);
  qc.swap(0, 1);
  qc.setOutputPermutation(ir::Permutation({1, 0}));
  dd::Package pkg(2);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  // logical result: X applied to logical qubit 0
  EXPECT_NEAR(pkg.fidelity(out, pkg.makeBasisState(0b01)), 1.0, 1e-12);
  const auto dense = sim::DenseSimulator::simulate(qc, 0);
  expectStatesMatch(pkg, out, dense);
}

TEST(DDSimulator, LayoutsMatchDenseOnRandomCircuits) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    auto qc = randomCircuit(4, 25, 1000 + static_cast<std::uint64_t>(trial));
    std::vector<std::uint16_t> in{0, 1, 2, 3};
    std::vector<std::uint16_t> out{0, 1, 2, 3};
    std::shuffle(in.begin(), in.end(), rng);
    std::shuffle(out.begin(), out.end(), rng);
    qc.setInitialLayout(ir::Permutation(in));
    qc.setOutputPermutation(ir::Permutation(out));
    dd::Package pkg(4);
    for (const std::uint64_t input : {3ULL, 9ULL}) {
      const auto ddOut = sim::simulate(qc, pkg.makeBasisState(input), pkg);
      const auto dense = sim::DenseSimulator::simulate(qc, input);
      expectStatesMatch(pkg, ddOut, dense);
    }
    // and the functionality construction agrees with the dense matrix
    const auto u = sim::buildFunctionality(qc, pkg);
    const auto denseU = sim::DenseSimulator::buildMatrix(qc);
    for (std::uint64_t r = 0; r < 16; ++r) {
      for (std::uint64_t c = 0; c < 16; ++c) {
        const auto e = pkg.getEntry(u, r, c);
        EXPECT_NEAR(e.re, denseU[r][c].real(), 1e-9);
        EXPECT_NEAR(e.im, denseU[r][c].imag(), 1e-9);
      }
    }
  }
}

TEST(DDSimulator, MaterializedLayoutsPreserveFunctionality) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    auto qc = randomCircuit(4, 20, 600 + static_cast<std::uint64_t>(trial));
    std::vector<std::uint16_t> in{0, 1, 2, 3};
    std::vector<std::uint16_t> out{0, 1, 2, 3};
    std::shuffle(in.begin(), in.end(), rng);
    std::shuffle(out.begin(), out.end(), rng);
    qc.setInitialLayout(ir::Permutation(in));
    qc.setOutputPermutation(ir::Permutation(out));

    const auto flat = qc.withMaterializedLayouts();
    dd::Package pkg(4);
    const auto u1 = sim::buildFunctionality(qc, pkg);
    pkg.incRef(u1);
    const auto u2 = sim::buildFunctionality(flat, pkg);
    EXPECT_EQ(u1, u2) << "trial " << trial;
    pkg.decRef(u1);
  }
}

TEST(DDSimulator, DeadlineAborts) {
  const auto qc = randomCircuit(6, 5000, 5);
  dd::Package pkg(6);
  const auto deadline = util::Deadline::after(std::chrono::duration<double>(0));
  EXPECT_THROW((void)sim::simulate(qc, pkg.makeZeroState(), pkg, &deadline),
               util::TimeoutError);
}

TEST(DenseSimulator, RejectsTooManyQubits) {
  ir::QuantumComputation qc(30);
  EXPECT_THROW((void)sim::DenseSimulator::simulate(qc, 0),
               std::invalid_argument);
}
