// Static-analysis tests: one positive and one negative case per rule of the
// CircuitAnalyzer catalog, plus the integration seams (parser post-parse
// validation, ec::flow preflight, FlowResult JSON).

#include "analysis/analyzer.hpp"
#include "ec/flow.hpp"
#include "ec/serialize.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

using namespace qsimec;
using analysis::CircuitAnalyzer;
using analysis::Severity;

namespace {

/// Count the diagnostics carrying `rule`.
std::size_t countRule(const analysis::AnalysisReport& report,
                      const char* rule) {
  return static_cast<std::size_t>(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const analysis::Diagnostic& d) {
                      return d.rule == rule;
                    }));
}

const analysis::Diagnostic* findRule(const analysis::AnalysisReport& report,
                                     const char* rule) {
  for (const auto& d : report.diagnostics) {
    if (d.rule == rule) {
      return &d;
    }
  }
  return nullptr;
}

} // namespace

// --- clean circuits ---------------------------------------------------------

TEST(Analyzer, WellFormedCircuitIsClean) {
  ir::QuantumComputation qc(3, "ok");
  qc.h(0);
  qc.cx(0, 1);
  qc.ccx(0, 1, 2);
  qc.rx(0.5, 2);
  const auto report = CircuitAnalyzer().analyze(qc);
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.hasErrors());
}

TEST(Analyzer, WellFormedPairIsClean) {
  ir::QuantumComputation a(2);
  a.h(0);
  a.cx(0, 1);
  ir::QuantumComputation b(2);
  b.h(0);
  b.cx(0, 1);
  EXPECT_TRUE(CircuitAnalyzer().analyzePair(a, b).empty());
}

// --- QA001 qubit out of range ----------------------------------------------

TEST(Analyzer, QA001_QubitOutOfRange) {
  ir::QuantumComputation qc(2);
  qc.ops().push_back(
      ir::StandardOperation::makeUnchecked(ir::OpType::H, {ir::Qubit{5}}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  ASSERT_EQ(countRule(report, analysis::rules::QubitOutOfRange), 1U);
  const auto* d = findRule(report, analysis::rules::QubitOutOfRange);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->gate, std::size_t{0});
}

TEST(Analyzer, QA001_BoundaryQubitIsFine) {
  ir::QuantumComputation qc(2);
  qc.h(1); // highest valid index
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::QubitOutOfRange), 0U);
}

// --- QA002 control == target -------------------------------------------------

TEST(Analyzer, QA002_ControlCoincidesWithTarget) {
  ir::QuantumComputation qc(2);
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::X, {ir::Qubit{0}}, {ir::Control{0, true}}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::ControlIsTarget), 1U);
}

TEST(Analyzer, QA002_DisjointControlIsFine) {
  ir::QuantumComputation qc(2);
  qc.cx(0, 1);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::ControlIsTarget),
            0U);
}

// --- QA003 duplicate control -------------------------------------------------

TEST(Analyzer, QA003_DuplicateControl) {
  ir::QuantumComputation qc(3);
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::X, {ir::Qubit{2}},
      {ir::Control{0, true}, ir::Control{0, false}}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::DuplicateControl), 1U);
}

TEST(Analyzer, QA003_DistinctControlsAreFine) {
  ir::QuantumComputation qc(3);
  qc.ccx(0, 1, 2);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::DuplicateControl),
            0U);
}

// --- QA004 non-finite parameter ---------------------------------------------

TEST(Analyzer, QA004_NonFiniteParameter) {
  ir::QuantumComputation qc(1);
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::RX, {ir::Qubit{0}}, {},
      {std::numeric_limits<double>::quiet_NaN(), 0, 0}));
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::RZ, {ir::Qubit{0}}, {},
      {std::numeric_limits<double>::infinity(), 0, 0}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::NonFiniteParameter), 2U);
}

TEST(Analyzer, QA004_UnusedParamSlotsIgnored) {
  // Only the first numParams(type) slots are checked; an RX never looks at
  // params[1] and params[2].
  ir::QuantumComputation qc(1);
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::RX, {ir::Qubit{0}}, {},
      {0.5, std::numeric_limits<double>::quiet_NaN(), 0}));
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::NonFiniteParameter),
            0U);
}

// --- QA005 / QA006 invalid layouts ------------------------------------------

TEST(Analyzer, QA005_NonBijectiveInitialLayout) {
  ir::QuantumComputation qc(2);
  qc.setInitialLayoutUnchecked(ir::Permutation::makeUnchecked({0, 0}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidInitialLayout), 1U);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidOutputPermutation), 0U);
}

TEST(Analyzer, QA006_WrongSizeOutputPermutation) {
  ir::QuantumComputation qc(3);
  qc.setOutputPermutationUnchecked(ir::Permutation::makeUnchecked({1, 0}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidOutputPermutation), 1U);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidInitialLayout), 0U);
}

TEST(Analyzer, QA005_QA006_IdentityAndProperPermutationsAreFine) {
  ir::QuantumComputation qc(3);
  qc.setOutputPermutation(ir::Permutation({2, 0, 1}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidInitialLayout), 0U);
  EXPECT_EQ(countRule(report, analysis::rules::InvalidOutputPermutation), 0U);
}

// --- QA007 zero-qubit circuit ------------------------------------------------

TEST(Analyzer, QA007_ZeroQubitCircuitIsRootCauseOnly) {
  const ir::QuantumComputation qc(0);
  const auto report = CircuitAnalyzer().analyze(qc);
  ASSERT_EQ(report.diagnostics.size(), 1U);
  EXPECT_EQ(report.diagnostics[0].rule, analysis::rules::ZeroQubitCircuit);
  EXPECT_EQ(report.diagnostics[0].severity, Severity::Error);
}

// --- QA008 empty circuit -----------------------------------------------------

TEST(Analyzer, QA008_EmptyCircuitIsWarningNotError) {
  const ir::QuantumComputation qc(2);
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  ASSERT_EQ(countRule(report, analysis::rules::EmptyCircuit), 1U);
  EXPECT_FALSE(report.hasErrors());
  EXPECT_EQ(report.count(Severity::Warning), 1U);
}

// --- QA009 duplicate target --------------------------------------------------

TEST(Analyzer, QA009_DuplicateTarget) {
  ir::QuantumComputation qc(2);
  qc.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::SWAP, {ir::Qubit{1}, ir::Qubit{1}}));
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::DuplicateTarget), 1U);
}

TEST(Analyzer, QA009_ProperSwapIsFine) {
  ir::QuantumComputation qc(2);
  qc.swap(0, 1);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::DuplicateTarget),
            0U);
}

// --- QL001 adjacent self-inverse pair (lint) --------------------------------

TEST(Analyzer, QL001_AdjacentInversePairIsWarning) {
  ir::QuantumComputation qc(1);
  qc.h(0);
  qc.h(0);
  const auto report = CircuitAnalyzer({.lint = true}).analyze(qc);
  ASSERT_EQ(countRule(report, analysis::rules::AdjacentInversePair), 1U);
  const auto* d = findRule(report, analysis::rules::AdjacentInversePair);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->gate, std::size_t{1});
  EXPECT_FALSE(report.hasErrors());
}

TEST(Analyzer, QL001_SuppressedWithoutLintAndOnDifferentQubits) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.h(0);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::AdjacentInversePair),
            0U);
  ir::QuantumComputation qc2(2);
  qc2.h(0);
  qc2.h(1); // same gate, different wire — not a cancelling pair
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = true}).analyze(qc2),
                      analysis::rules::AdjacentInversePair),
            0U);
}

TEST(Analyzer, QL001_InverseRotationPair) {
  ir::QuantumComputation qc(1);
  qc.rz(0.25, 0);
  qc.rz(-0.25, 0);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = true}).analyze(qc),
                      analysis::rules::AdjacentInversePair),
            1U);
}

// --- QL002 unused qubit (lint) ----------------------------------------------

TEST(Analyzer, QL002_UnusedQubitIsNote) {
  ir::QuantumComputation qc(3);
  qc.cx(0, 1); // qubit 2 untouched
  const auto report = CircuitAnalyzer({.lint = true}).analyze(qc);
  ASSERT_EQ(countRule(report, analysis::rules::UnusedQubit), 1U);
  EXPECT_EQ(findRule(report, analysis::rules::UnusedQubit)->severity,
            Severity::Note);
  EXPECT_FALSE(report.hasErrors());
}

TEST(Analyzer, QL002_AllQubitsUsedIsClean) {
  ir::QuantumComputation qc(2);
  qc.cx(0, 1);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = true}).analyze(qc),
                      analysis::rules::UnusedQubit),
            0U);
}

// --- QP001 / QP002 pair rules ------------------------------------------------

TEST(Analyzer, QP001_WidthMismatch) {
  ir::QuantumComputation a(2);
  a.h(0);
  a.h(1);
  ir::QuantumComputation b(3);
  b.h(0);
  b.h(1);
  b.h(2);
  const auto report = CircuitAnalyzer({.lint = false}).analyzePair(a, b);
  EXPECT_EQ(countRule(report, analysis::rules::WidthMismatch), 1U);
  EXPECT_EQ(countRule(report, analysis::rules::OutputPermutationMismatch), 1U);
  EXPECT_TRUE(report.hasErrors());
}

TEST(Analyzer, QP002_IndependentOfWidthWhenLayoutsDiffer) {
  // Same qubit count, but one side carries a malformed (short) output
  // permutation: QP002 fires without QP001.
  ir::QuantumComputation a(2);
  a.h(0);
  a.h(1);
  ir::QuantumComputation b(2);
  b.h(0);
  b.h(1);
  b.setOutputPermutationUnchecked(ir::Permutation::makeUnchecked({0}));
  const auto report = CircuitAnalyzer({.lint = false}).analyzePair(a, b);
  EXPECT_EQ(countRule(report, analysis::rules::WidthMismatch), 0U);
  EXPECT_EQ(countRule(report, analysis::rules::OutputPermutationMismatch), 1U);
}

TEST(Analyzer, PairDiagnosticsCarryCircuitIndex) {
  ir::QuantumComputation a(2);
  a.h(0);
  a.h(1);
  ir::QuantumComputation b(2);
  b.ops().push_back(
      ir::StandardOperation::makeUnchecked(ir::OpType::H, {ir::Qubit{7}}));
  b.h(0);
  b.h(1);
  const auto report = CircuitAnalyzer({.lint = false}).analyzePair(a, b);
  const auto* d = findRule(report, analysis::rules::QubitOutOfRange);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->circuit, 1U);
}

// --- diagnostic formatting ---------------------------------------------------

TEST(Diagnostic, ToStringFormat) {
  const analysis::Diagnostic d{"QA001", Severity::Error, 3, 0,
                               "qubit index 5 out of range"};
  EXPECT_EQ(analysis::toString(d),
            "error[QA001] gate #3: qubit index 5 out of range");
  const analysis::Diagnostic noGate{"QA007", Severity::Error, std::nullopt, 0,
                                    "circuit declares zero qubits"};
  EXPECT_EQ(analysis::toString(noGate),
            "error[QA007]: circuit declares zero qubits");
}

TEST(Diagnostic, JsonRendering) {
  const analysis::Diagnostic d{"QL001", Severity::Warning, 1, 0, "redundant"};
  const std::string json = analysis::toJson(d);
  EXPECT_NE(json.find("\"rule\":\"QL001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"gate\":1"), std::string::npos);
  EXPECT_EQ(analysis::toJson(std::vector<analysis::Diagnostic>{}), "[]");
}

TEST(Diagnostic, ValidationErrorCarriesDiagnostics) {
  std::vector<analysis::Diagnostic> ds{
      {"QA001", Severity::Error, 0, 0, "first"},
      {"QA002", Severity::Error, 1, 0, "second"}};
  const analysis::ValidationError err("test.qasm", ds);
  EXPECT_EQ(err.diagnostics().size(), 2U);
  EXPECT_NE(std::string(err.what()).find("QA001"), std::string::npos);
  EXPECT_NE(std::string(err.what()).find("+1 more"), std::string::npos);
}

// --- parser integration ------------------------------------------------------

TEST(AnalysisIntegration, QasmValidateModeRejectsNonFiniteParam) {
  const std::string src = "OPENQASM 2.0;\n"
                          "qreg q[1];\n"
                          "rx(1/0) q[0];\n";
  EXPECT_THROW((void)io::parseQasmString(src), analysis::ValidationError);
  try {
    (void)io::parseQasmString(src);
  } catch (const analysis::ValidationError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].rule, analysis::rules::NonFiniteParameter);
  }
}

TEST(AnalysisIntegration, QasmLintModeAdmitsMalformedGates) {
  const std::string src = "OPENQASM 2.0;\n"
                          "qreg q[2];\n"
                          "cx q[0],q[0];\n"
                          "rx(1/0) q[1];\n";
  const auto qc = io::parseQasmString(src, "", {.validate = false});
  ASSERT_EQ(qc.size(), 2U);
  const auto report = CircuitAnalyzer({.lint = false}).analyze(qc);
  EXPECT_EQ(countRule(report, analysis::rules::ControlIsTarget), 1U);
  EXPECT_EQ(countRule(report, analysis::rules::NonFiniteParameter), 1U);
}

TEST(AnalysisIntegration, QasmValidateModeStillThrowsParseErrorOnOverlap) {
  // Overlapping control/target is caught in validate mode at gate-emission
  // time, with the offending source line attached.
  const std::string src = "OPENQASM 2.0;\n"
                          "qreg q[2];\n"
                          "cx q[0],q[0];\n";
  try {
    (void)io::parseQasmString(src);
    FAIL() << "expected QasmParseError";
  } catch (const io::QasmParseError& e) {
    EXPECT_EQ(e.line(), 3U);
  }
}

TEST(AnalysisIntegration, RealLintModeAdmitsMalformedGates) {
  const std::string src = ".numvars 2\n"
                          ".variables a b\n"
                          ".begin\n"
                          "t2 a a\n"
                          ".end\n";
  EXPECT_THROW((void)io::parseRealString(src), io::RealParseError);
  const auto qc = io::parseRealString(src, "", {.validate = false});
  ASSERT_EQ(qc.size(), 1U);
  EXPECT_EQ(countRule(CircuitAnalyzer({.lint = false}).analyze(qc),
                      analysis::rules::ControlIsTarget),
            1U);
}

// --- ec::flow preflight ------------------------------------------------------

TEST(AnalysisIntegration, FlowRejectsMalformedPairAsInvalidInput) {
  ir::QuantumComputation a(2);
  a.h(0);
  a.h(1);
  ir::QuantumComputation b(2);
  b.ops().push_back(
      ir::StandardOperation::makeUnchecked(ir::OpType::H, {ir::Qubit{9}}));
  b.h(0);
  b.h(1);
  const auto result = ec::EquivalenceCheckingFlow().run(a, b);
  EXPECT_EQ(result.equivalence, ec::Equivalence::InvalidInput);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.diagnostics[0].rule, analysis::rules::QubitOutOfRange);
  EXPECT_EQ(result.simulations, 0U);
}

TEST(AnalysisIntegration, FlowPreflightCanBeDisabled) {
  // With validation off the flow behaves exactly as before this subsystem
  // existed (well-formed inputs, of course).
  ir::QuantumComputation a(2);
  a.h(0);
  a.cx(0, 1);
  ir::QuantumComputation b(2);
  b.h(0);
  b.cx(0, 1);
  ec::FlowConfiguration config;
  config.validateInputs = false;
  const auto result = ec::EquivalenceCheckingFlow(config).run(a, b);
  EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);
  // no preflight findings; the only diagnostic is the prescreen's QS004
  // note (the identical pair is decided statically)
  ASSERT_EQ(result.diagnostics.size(), 1U);
  EXPECT_EQ(result.diagnostics[0].rule,
            analysis::rules::StaticallyIdentical);
  EXPECT_EQ(result.tier, analysis::TierHint::Static);
}

TEST(AnalysisIntegration, FlowAcceptsCleanPairAndKeepsWarnings) {
  // Warning-level findings must not abort the check; QA008 (empty circuit)
  // is recorded in the result while the verdict comes from the checkers.
  const ir::QuantumComputation a(1);
  const ir::QuantumComputation b(1);
  const auto result = ec::EquivalenceCheckingFlow().run(a, b);
  EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);
  // one QA008 per circuit, plus the prescreen's QS004 verdict note
  EXPECT_EQ(result.diagnostics.size(), 3U);
}

TEST(AnalysisIntegration, FlowResultJsonCarriesDiagnostics) {
  ir::QuantumComputation a(1);
  a.h(0);
  ir::QuantumComputation b(1);
  b.ops().push_back(ir::StandardOperation::makeUnchecked(
      ir::OpType::RX, {ir::Qubit{0}}, {},
      {std::numeric_limits<double>::quiet_NaN(), 0, 0}));
  const auto result = ec::EquivalenceCheckingFlow().run(a, b);
  EXPECT_EQ(result.equivalence, ec::Equivalence::InvalidInput);
  const std::string json = ec::toJson(result);
  EXPECT_NE(json.find("invalid input"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(json.find("QA004"), std::string::npos);
}
