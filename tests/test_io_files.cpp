// File-level I/O tests: golden circuit files from tests/data plus
// robustness (fuzz-ish) checks — malformed input must raise parse errors,
// never crash or silently succeed.

#include "analysis/diagnostic.hpp"
#include "ec/construction_checker.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "io/tfc.hpp"
#include "sim/dd_simulator.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace qsimec;

namespace {
std::string dataPath(const std::string& name) {
  return std::string(QSIMEC_TESTDATA_DIR) + "/" + name;
}
} // namespace

TEST(GoldenFiles, BellQasm) {
  const auto qc = io::parseQasmFile(dataPath("bell.qasm"));
  EXPECT_EQ(qc.qubits(), 2U);
  EXPECT_EQ(qc.size(), 3U); // h, cx, u3 (barrier/measure ignored)
  dd::Package pkg(2);
  const auto out = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.norm2(out), 1.0, 1e-9);
}

TEST(GoldenFiles, TeleportQasmUsesTwoRegisters) {
  const auto qc = io::parseQasmFile(dataPath("teleport.qasm"));
  EXPECT_EQ(qc.qubits(), 3U);
  EXPECT_EQ(qc.countType(ir::OpType::X), 3U); // the three CNOTs
  EXPECT_EQ(qc.countType(ir::OpType::Z), 1U); // the CZ
}

TEST(GoldenFiles, ToffoliChainWithGateDefinition) {
  const auto qc = io::parseQasmFile(dataPath("toffoli_chain.qasm"));
  EXPECT_EQ(qc.qubits(), 4U);
  // x + 2 * (cx, cx, ccx)
  EXPECT_EQ(qc.size(), 7U);
  EXPECT_EQ(qc.countType(ir::OpType::X), 7U);
}

TEST(GoldenFiles, PeresReal) {
  const auto qc = io::parseRealFile(dataPath("peres.real"));
  EXPECT_EQ(qc.qubits(), 3U);
  EXPECT_EQ(qc.size(), 6U);
  // the v / v+ pair cancels; check the circuit equals its X/SWAP prefix
  ir::QuantumComputation prefix(3);
  for (std::size_t i = 0; i < 4; ++i) {
    prefix.emplace(qc.at(i));
  }
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(qc, prefix).equivalence,
            ec::Equivalence::Equivalent);
}

TEST(GoldenFiles, Toffoli3Tfc) {
  const auto qc = io::parseTfcFile(dataPath("tfc/toffoli3.tfc"));
  EXPECT_EQ(qc.qubits(), 3U);
  EXPECT_EQ(qc.size(), 3U);
  // first .v variable = most-significant qubit, matching .real
  EXPECT_EQ(qc.at(0).target(), 2U);          // t1 a
  EXPECT_EQ(qc.at(2).target(), 0U);          // t3 a,b,c targets c
  EXPECT_EQ(qc.at(2).controls().size(), 2U); // ... controlled on a,b
}

TEST(GoldenFiles, NegativeControlsAndVGatesTfc) {
  const auto qc = io::parseTfcFile(dataPath("tfc/negctl.tfc"));
  EXPECT_EQ(qc.qubits(), 4U);
  EXPECT_EQ(qc.size(), 4U);
  EXPECT_FALSE(qc.at(0).controls().front().positive); // t2 a',b
  EXPECT_EQ(qc.at(1).type(), ir::OpType::SWAP);       // f3 a,b,c
  // the v / v+ pair cancels: circuit equals its two-gate prefix
  ir::QuantumComputation prefix(4);
  prefix.emplace(qc.at(0));
  prefix.emplace(qc.at(1));
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(qc, prefix).equivalence, ec::Equivalence::Equivalent);
}

TEST(GoldenFiles, TfcRoundTrip) {
  const auto qc = io::parseTfcFile(dataPath("tfc/negctl.tfc"));
  const auto back = io::parseTfcString(io::toTfcString(qc), "roundtrip");
  EXPECT_EQ(back.qubits(), qc.qubits());
  EXPECT_EQ(back.size(), qc.size());
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(qc, back).equivalence, ec::Equivalence::Equivalent);
}

TEST(GoldenFiles, MissingFileThrows) {
  EXPECT_THROW((void)io::parseQasmFile(dataPath("nope.qasm")),
               std::runtime_error);
  EXPECT_THROW((void)io::parseRealFile(dataPath("nope.real")),
               std::runtime_error);
  EXPECT_THROW((void)io::parseTfcFile(dataPath("nope.tfc")),
               std::runtime_error);
}

// --- malformed fixture files ---------------------------------------------
// The bad_* fixtures exercise the validate/lint split on whole files: the
// default (validating) parse rejects them, the lint-mode parse admits them
// so `qsimec lint` can report structured diagnostics.

TEST(MalformedFiles, QasmOverlapRejectedByDefaultParse) {
  EXPECT_THROW((void)io::parseQasmFile(dataPath("bad_overlap.qasm")),
               io::QasmParseError);
  const auto qc =
      io::parseQasmFile(dataPath("bad_overlap.qasm"), {.validate = false});
  EXPECT_EQ(qc.size(), 2U); // h + the malformed cx, both admitted
}

TEST(MalformedFiles, QasmNonFiniteParamFailsPostParseValidation) {
  EXPECT_THROW((void)io::parseQasmFile(dataPath("bad_nonfinite.qasm")),
               analysis::ValidationError);
  const auto qc =
      io::parseQasmFile(dataPath("bad_nonfinite.qasm"), {.validate = false});
  EXPECT_EQ(qc.size(), 1U);
}

TEST(MalformedFiles, RealOverlapRejectedByDefaultParse) {
  EXPECT_THROW((void)io::parseRealFile(dataPath("bad_overlap.real")),
               io::RealParseError);
  const auto qc =
      io::parseRealFile(dataPath("bad_overlap.real"), {.validate = false});
  EXPECT_EQ(qc.size(), 1U);
}

TEST(MalformedFiles, TfcTruncatedBody) {
  try {
    (void)io::parseTfcFile(dataPath("tfc/bad_truncated.tfc"));
    FAIL() << "expected TfcParseError";
  } catch (const io::TfcParseError& e) {
    EXPECT_NE(std::string(e.what()).find("END"), std::string::npos);
  }
}

TEST(MalformedFiles, TfcUndeclaredWire) {
  try {
    (void)io::parseTfcFile(dataPath("tfc/bad_undeclared.tfc"));
    FAIL() << "expected TfcParseError";
  } catch (const io::TfcParseError& e) {
    EXPECT_NE(std::string(e.what()).find("undeclared"), std::string::npos);
  }
}

TEST(MalformedFiles, TfcBadConstant) {
  EXPECT_THROW((void)io::parseTfcFile(dataPath("tfc/bad_constants.tfc")),
               io::TfcParseError);
}

TEST(MalformedFiles, TfcOverlapRejectedByDefaultParse) {
  EXPECT_THROW((void)io::parseTfcFile(dataPath("tfc/bad_overlap.tfc")),
               io::TfcParseError);
  const auto qc =
      io::parseTfcFile(dataPath("tfc/bad_overlap.tfc"), {.validate = false});
  EXPECT_EQ(qc.size(), 1U); // the malformed t2 a,a, admitted for linting
}

// --- robustness ----------------------------------------------------------

class QasmFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QasmFuzzTest, MalformedInputRaisesParseError) {
  EXPECT_THROW((void)io::parseQasmString(GetParam()), io::QasmParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QasmFuzzTest,
    ::testing::Values(
        "", "garbage", "OPENQASM", "OPENQASM 2.0", "OPENQASM 2.0;\nqreg",
        "OPENQASM 2.0;\nqreg q[2]\nh q[0];",   // missing semicolon
        "OPENQASM 2.0;\nqreg q[2];\nh q[0]",   // missing final semicolon
        "OPENQASM 2.0;\nqreg q[2];\nh q[2];",  // out of range
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0];", // arity
        "OPENQASM 2.0;\nqreg q[2];\nrx() q[0];",
        "OPENQASM 2.0;\nqreg q[2];\nrx(bogus) q[0];",
        "OPENQASM 2.0;\nqreg q[2];\nrx(1+) q[0];",
        "OPENQASM 2.0;\nqreg q[2];\nqreg q[3];",     // duplicate register
        "OPENQASM 2.0;\nqreg q[2];\nh r[0];",        // unknown register
        "OPENQASM 2.0;\nqreg q[2];\ngate g a { x b; } g q[0];",
        "OPENQASM 2.0;\nqreg q[2];\ngate g a { g a; } g q[0];", // recursion
        "OPENQASM 2.0;\nqreg q[2];\nreset q[0];",
        "OPENQASM 2.0;\nqreg q[0];"));

class RealFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RealFuzzTest, MalformedInputRaisesParseError) {
  EXPECT_THROW((void)io::parseRealString(GetParam()), io::RealParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RealFuzzTest,
    ::testing::Values(
        "", ".begin\n.end\n", ".numvars 2\n.begin\nt1 a\n.end\n",
        ".numvars 2\n.variables a\n",
        ".numvars 2\n.variables a b\n.begin\nt1 z\n.end\n",
        ".numvars 2\n.variables a b\n.begin\nq1 a\n.end\n",
        ".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n",
        ".numvars 2\n.variables a b\n.begin\nt2 a -b\n.end\n", // neg target
        ".numvars 2\n.variables a b\n.begin\nt1 a\n",          // no .end
        ".numvars 2\n.variables a a\n.begin\n.end\n"));

class TfcFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TfcFuzzTest, MalformedInputRaisesParseError) {
  EXPECT_THROW((void)io::parseTfcString(GetParam()), io::TfcParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TfcFuzzTest,
    ::testing::Values(
        "", "garbage\n", "BEGIN\nEND\n",               // body before .v
        ".v\nBEGIN\nEND\n",                            // empty .v
        ".v a,a\nBEGIN\nEND\n",                        // duplicate variable
        ".v a,b\n.v c\nBEGIN\nEND\n",                  // duplicate .v
        ".v a,b\n.i a,c\nBEGIN\nEND\n",                // undeclared input
        ".v a,b\n.o z\nBEGIN\nEND\n",                  // undeclared output
        ".v a,b\n.c 0,1,0\nBEGIN\nEND\n",              // too many constants
        ".v a,b\n.i a\n.c 0,1\nBEGIN\nEND\n",          // constants > non-inputs
        ".v a,b\n.c x\nBEGIN\nEND\n",                  // non-binary constant
        ".v a,b\nBEGIN\nt2 a,b\n",                     // missing END
        ".v a,b\nBEGIN\nt2 a\nEND\n",                  // arity mismatch
        ".v a,b\nBEGIN\nt2 a,z\nEND\n",                // unknown operand
        ".v a,b\nBEGIN\nt2 a,b'\nEND\n",               // negated target
        ".v a,b\nBEGIN\nt2 a,,b\nEND\n",               // empty operand
        ".v a,b\nBEGIN\ng2 a,b\nEND\n",                // unknown gate kind
        ".v a,b\nBEGIN\ntx a,b\nEND\n",                // non-numeric arity
        ".v a,b,c\nBEGIN\nf1 a\nEND\n",                // fredkin needs 2 targets
        ".v a,b\nBEGIN\nf2 a,a\nEND\n"));              // swap on one wire
