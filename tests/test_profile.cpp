// The semantic pair profiler: gate-set classification, the static
// prescreen (prefix/suffix cancellation, rotation merging, QS verdict
// rules), the tier router, and the stabilizer-tier checker.
//
// The soundness anchor is the dense oracle: for every pair small enough to
// enumerate, a static verdict must agree with the column-by-column unitary
// comparison, and the routed flow must produce the same verdict as the
// unrouted (prescreen-off) flow — byte-identical under verdict-only
// serialization at every thread count.

#include "analysis/analyzer.hpp"
#include "analysis/prescreen.hpp"
#include "analysis/profile.hpp"
#include "ec/flow.hpp"
#include "ec/serialize.hpp"
#include "ec/stabilizer_checker.hpp"
#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "obs/context.hpp"
#include "obs/tracer.hpp"
#include "sim/dense_simulator.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <string>
#include <vector>

using namespace qsimec;

namespace {

constexpr double kPi = std::numbers::pi;

ir::QuantumComputation paperCircuitG() {
  ir::QuantumComputation qc(3, "fig1b");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.cx(2, 1);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

ir::QuantumComputation paperCircuitGPrime() {
  ir::QuantumComputation qc(3, "fig2");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.swap(1, 2);
  qc.cx(1, 2);
  qc.swap(1, 2);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

/// A random Clifford-only circuit over {H, S, Sdg, X, Y, Z, CX, CZ, SWAP}.
ir::QuantumComputation randomClifford(std::size_t nqubits, std::size_t ngates,
                                      std::uint64_t seed) {
  ir::QuantumComputation qc(nqubits, "clifford" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> gateDist(0, 8);
  std::uniform_int_distribution<std::size_t> qubitDist(0, nqubits - 1);
  for (std::size_t i = 0; i < ngates; ++i) {
    const auto q = static_cast<ir::Qubit>(qubitDist(rng));
    switch (gateDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.sdg(q);
      break;
    case 3:
      qc.x(q);
      break;
    case 4:
      qc.y(q);
      break;
    case 5:
      qc.z(q);
      break;
    default: {
      auto c = static_cast<ir::Qubit>(qubitDist(rng));
      if (c == q) {
        c = static_cast<ir::Qubit>((c + 1) % nqubits);
      }
      if (nqubits < 2) {
        qc.h(q);
      } else if (gateDist(rng) % 3 == 0) {
        qc.swap(c, q);
      } else if (gateDist(rng) % 2 == 0) {
        qc.cz(c, q);
      } else {
        qc.cx(c, q);
      }
      break;
    }
    }
  }
  return qc;
}

enum class OracleVerdict { Equal, EqualUpToPhase, Different };

/// Column-by-column dense comparison of the two unitaries (exponential —
/// for small widths only).
OracleVerdict denseOracle(const ir::QuantumComputation& a,
                          const ir::QuantumComputation& b) {
  const std::uint64_t dim = 1ULL << a.qubits();
  std::complex<double> phase{0.0, 0.0};
  bool phaseKnown = false;
  for (std::uint64_t col = 0; col < dim; ++col) {
    const auto ua = sim::DenseSimulator::simulate(a, col);
    const auto ub = sim::DenseSimulator::simulate(b, col);
    for (std::uint64_t row = 0; row < dim; ++row) {
      if (std::abs(ub[row]) < 1e-10 && std::abs(ua[row]) < 1e-10) {
        continue;
      }
      if (std::abs(ub[row]) < 1e-10 || std::abs(ua[row]) < 1e-10) {
        return OracleVerdict::Different;
      }
      const std::complex<double> ratio = ua[row] / ub[row];
      if (std::abs(std::abs(ratio) - 1.0) > 1e-9) {
        return OracleVerdict::Different;
      }
      if (!phaseKnown) {
        phase = ratio;
        phaseKnown = true;
      } else if (std::abs(ratio - phase) > 1e-9) {
        return OracleVerdict::Different;
      }
    }
  }
  if (!phaseKnown || std::abs(phase - std::complex<double>{1.0, 0.0}) < 1e-9) {
    return OracleVerdict::Equal;
  }
  return OracleVerdict::EqualUpToPhase;
}

} // namespace

// --- gate-set classification -------------------------------------------

TEST(Profile, ClassifiesCliffordOnly) {
  ir::QuantumComputation qc(3);
  qc.h(0);
  qc.s(1);
  qc.cx(0, 1);
  qc.cz(1, 2);
  qc.swap(0, 2);
  qc.rz(kPi / 2, 0);     // pi/2 grid is Clifford
  qc.phase(-kPi, 1);     // so is -pi
  const auto p = analysis::profileCircuit(qc);
  EXPECT_EQ(p.gateSet, analysis::GateSetClass::CliffordOnly);
  EXPECT_EQ(p.cliffordBreakerCount, 0U);
  EXPECT_EQ(p.tGates, 0U);
  EXPECT_EQ(p.generalGates, 0U);
}

TEST(Profile, ClassifiesCliffordT) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.t(0);
  qc.cx(0, 1);
  qc.rz(kPi / 4, 1); // pi/4 grid is Clifford+T
  qc.tdg(1);
  const auto p = analysis::profileCircuit(qc);
  EXPECT_EQ(p.gateSet, analysis::GateSetClass::CliffordT);
  EXPECT_EQ(p.tGates, 3U);
  EXPECT_EQ(p.generalGates, 0U);
  EXPECT_EQ(p.cliffordBreakerCount, 3U);
  EXPECT_EQ(p.cliffordTBreakerCount, 0U);
}

TEST(Profile, ClassifiesGeneral) {
  ir::QuantumComputation qc(3);
  qc.h(0);
  qc.rx(0.3, 1);
  qc.ccx(0, 1, 2); // two controls break the Clifford set
  const auto p = analysis::profileCircuit(qc);
  EXPECT_EQ(p.gateSet, analysis::GateSetClass::General);
  EXPECT_EQ(p.generalGates, 2U);
  ASSERT_EQ(p.controlArity.size(), 3U);
  EXPECT_EQ(p.controlArity[0], 2U);
  EXPECT_EQ(p.controlArity[2], 1U);
  EXPECT_EQ(p.maxControls(), 2U);
}

TEST(Profile, RandomCliffordTGeneratorClassifiesAsCliffordT) {
  const auto qc = gen::randomCliffordT(5, 200, 11);
  const auto p = analysis::profileCircuit(qc);
  EXPECT_EQ(p.gateSet, analysis::GateSetClass::CliffordT);
  EXPECT_GT(p.tGates, 0U);
  EXPECT_EQ(p.generalGates, 0U);
}

TEST(Profile, PairCombinesToTheWiderClass) {
  const auto clifford = randomClifford(4, 30, 3);
  auto withT = randomClifford(4, 30, 4);
  withT.t(0);
  const auto profile = analysis::profilePair(clifford, withT);
  EXPECT_EQ(profile.g.gateSet, analysis::GateSetClass::CliffordOnly);
  EXPECT_EQ(profile.gPrime.gateSet, analysis::GateSetClass::CliffordT);
  EXPECT_EQ(profile.combined(), analysis::GateSetClass::CliffordT);
}

// --- static prescreen ---------------------------------------------------

TEST(Prescreen, StripsCommonPrefixAndSuffix) {
  ir::QuantumComputation g(2);
  g.h(0);
  g.cx(0, 1);
  g.t(0); // middle differs
  g.s(1);
  g.h(1);
  ir::QuantumComputation gPrime(2);
  gPrime.h(0);
  gPrime.cx(0, 1);
  gPrime.tdg(0); // middle differs
  gPrime.s(1);
  gPrime.h(1);
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_EQ(pre.strippedPrefix, 2U);
  EXPECT_EQ(pre.strippedSuffix, 2U);
  EXPECT_EQ(pre.residualG.size(), 1U);
  EXPECT_EQ(pre.residualGPrime.size(), 1U);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::Undecided);
}

TEST(Prescreen, MergesAdjacentRotationsAndDecidesIdentical) {
  ir::QuantumComputation g(1);
  g.rz(0.2, 0);
  g.rz(0.3, 0);
  ir::QuantumComputation gPrime(1);
  gPrime.rz(0.5, 0);
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_GE(pre.mergedRotations, 1U);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::Identical);
  EXPECT_EQ(denseOracle(g, gPrime), OracleVerdict::Equal);
}

TEST(Prescreen, DecidesDistinctViaDisjointResidual) {
  auto g = paperCircuitG();
  auto gPrime = paperCircuitG();
  gPrime.x(0); // one leftover flip after stripping
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::Distinct);
  EXPECT_EQ(denseOracle(g, gPrime), OracleVerdict::Different);
}

TEST(Prescreen, FullTurnRotationIsNotProvablyNonIdentity) {
  // RZ(2*pi) = -I: proportional to the identity, so a leftover full-turn
  // rotation must NOT yield a Distinct verdict.
  ir::QuantumComputation g(1);
  ir::QuantumComputation gPrime(1);
  gPrime.rz(2 * kPi, 0);
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_NE(pre.verdict, analysis::StaticVerdict::Distinct);
  EXPECT_NE(denseOracle(g, gPrime), OracleVerdict::Different);
}

TEST(Prescreen, GlobalPhaseDifferenceIsEqualUpToPhase) {
  auto g = paperCircuitG();
  auto gPrime = paperCircuitG();
  gPrime.gate(ir::OpType::GPhase, 0, {}, {kPi / 3, 0, 0});
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::IdenticalUpToGlobalPhase);
  EXPECT_EQ(denseOracle(g, gPrime), OracleVerdict::EqualUpToPhase);
}

TEST(Prescreen, UncontrolledGPhaseIsNotAWitnessButXIs) {
  // A controlled global phase acts non-trivially; an uncontrolled one
  // never does. The verdict rules must tell them apart.
  ir::QuantumComputation g(2);
  ir::QuantumComputation controlled(2);
  controlled.gate(ir::OpType::GPhase, 1, {ir::Control{0, true}},
                  {kPi / 2, 0, 0});
  const auto pre = analysis::prescreenPair(g, controlled);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::Distinct);
  EXPECT_EQ(denseOracle(g, controlled), OracleVerdict::Different);
}

TEST(Prescreen, VerdictsMatchDenseOracleOnRandomPairs) {
  // Randomized soundness sweep: wherever the prescreen claims a verdict,
  // the dense oracle must agree. Pairs are built to hit all three rules.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = randomClifford(4, 25, seed);

    // identical pair
    auto same = g;
    auto preSame = analysis::prescreenPair(g, same);
    EXPECT_EQ(preSame.verdict, analysis::StaticVerdict::Identical)
        << "seed " << seed;
    EXPECT_EQ(denseOracle(g, same), OracleVerdict::Equal) << "seed " << seed;

    // appended flip on an otherwise identical pair
    auto flipped = g;
    flipped.x(static_cast<ir::Qubit>(seed % 4));
    const auto preFlip = analysis::prescreenPair(g, flipped);
    if (preFlip.verdict != analysis::StaticVerdict::Undecided) {
      EXPECT_EQ(preFlip.verdict, analysis::StaticVerdict::Distinct)
          << "seed " << seed;
      EXPECT_EQ(denseOracle(g, flipped), OracleVerdict::Different)
          << "seed " << seed;
    }

    // global-phase twin
    auto phased = g;
    phased.gate(ir::OpType::GPhase, 0, {}, {0.7, 0, 0});
    const auto prePhase = analysis::prescreenPair(g, phased);
    EXPECT_EQ(prePhase.verdict,
              analysis::StaticVerdict::IdenticalUpToGlobalPhase)
        << "seed " << seed;
    EXPECT_EQ(denseOracle(g, phased), OracleVerdict::EqualUpToPhase)
        << "seed " << seed;
  }
}

// --- tier routing --------------------------------------------------------

TEST(TierRouting, CliffordPairGoesToStabilizer) {
  const auto g = paperCircuitG();
  const auto gPrime = paperCircuitGPrime();
  const auto profile = analysis::profilePair(g, gPrime);
  const auto pre = analysis::prescreenPair(g, gPrime);
  EXPECT_EQ(analysis::routeTier(profile, pre),
            analysis::TierHint::Stabilizer);
}

TEST(TierRouting, StaticVerdictWinsOverGateSet) {
  const auto g = gen::qft(4); // non-Clifford
  const auto profile = analysis::profilePair(g, g);
  const auto pre = analysis::prescreenPair(g, g);
  EXPECT_EQ(pre.verdict, analysis::StaticVerdict::Identical);
  EXPECT_EQ(analysis::routeTier(profile, pre), analysis::TierHint::Static);
}

TEST(TierRouting, GeneralPairStaysGeneral) {
  const auto g = gen::qft(4);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(4));
  const auto profile = analysis::profilePair(g, mapped.circuit);
  const auto pre = analysis::prescreenPair(g, mapped.circuit);
  EXPECT_EQ(analysis::routeTier(profile, pre), analysis::TierHint::General);
}

// --- stabilizer-tier checker ---------------------------------------------

TEST(StabilizerChecker, ProvesThePaperPairEquivalent) {
  const ec::StabilizerChecker checker;
  const auto result = checker.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, ec::Equivalence::Equivalent);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(StabilizerChecker, DisprovesAnInjectedFlip) {
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back();
  const ec::StabilizerChecker checker;
  const auto result = checker.run(paperCircuitG(), bad);
  EXPECT_EQ(result.equivalence, ec::Equivalence::NotEquivalent);
}

TEST(StabilizerChecker, ResolvesGlobalPhaseWithTheDenseProbe) {
  auto g = paperCircuitG();
  auto gPrime = paperCircuitG();
  gPrime.gate(ir::OpType::GPhase, 0, {}, {kPi / 3, 0, 0});
  const ec::StabilizerChecker checker;
  const auto result = checker.run(g, gPrime);
  EXPECT_EQ(result.equivalence, ec::Equivalence::EquivalentUpToGlobalPhase);
}

TEST(StabilizerChecker, WideCircuitSkipsTheProbeAndCoarsens) {
  // Above the probe cap an identity conjugation cannot distinguish exact
  // equality from a global phase; the verdict coarsens, soundly.
  const auto g = randomClifford(14, 80, 21);
  ec::StabilizerConfiguration config;
  config.phaseProbeMaxQubits = 4;
  const ec::StabilizerChecker checker(config);
  const auto result = checker.run(g, g);
  EXPECT_EQ(result.equivalence, ec::Equivalence::EquivalentUpToGlobalPhase);
}

TEST(StabilizerChecker, RandomCliffordPairsMatchDenseOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = randomClifford(3, 20, 100 + seed);
    auto gPrime = randomClifford(3, 20, 200 + seed);
    const ec::StabilizerChecker checker;
    const auto result = checker.run(g, gPrime);
    const auto oracle = denseOracle(g, gPrime);
    switch (result.equivalence) {
    case ec::Equivalence::Equivalent:
      EXPECT_EQ(oracle, OracleVerdict::Equal) << "seed " << seed;
      break;
    case ec::Equivalence::EquivalentUpToGlobalPhase:
      EXPECT_EQ(oracle, OracleVerdict::EqualUpToPhase) << "seed " << seed;
      break;
    case ec::Equivalence::NotEquivalent:
      EXPECT_EQ(oracle, OracleVerdict::Different) << "seed " << seed;
      break;
    default:
      FAIL() << "inconclusive stabilizer verdict at seed " << seed;
    }
  }
}

TEST(StabilizerChecker, VerdictIsDeterministicAcrossRepeats) {
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back();
  std::string reference;
  for (int repeat = 0; repeat < 5; ++repeat) {
    const ec::StabilizerChecker checker;
    const auto result = checker.run(paperCircuitG(), bad);
    const std::string json =
        toJson(result, ec::SerializeOptions{.redactProfile = true});
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "repeat " << repeat;
    }
  }
}

// --- routed flow vs unrouted flow ----------------------------------------

TEST(TierRouting, ProfiledFlowAgreesWithUnprofiledFlowEverywhere) {
  // The acceptance bar of the tier router: enabling the prescreen changes
  // how a verdict is produced, never which verdict — byte-identical under
  // verdict-only serialization, at one worker and at several.
  struct Pair {
    ir::QuantumComputation g;
    ir::QuantumComputation gPrime;
  };
  std::vector<Pair> pairs;
  // Clifford-only equivalent (stabilizer tier)
  pairs.push_back({paperCircuitG(), paperCircuitGPrime()});
  // Clifford-only broken (stabilizer tier, witness)
  {
    auto bad = paperCircuitGPrime();
    bad.ops().pop_back();
    pairs.push_back({paperCircuitG(), std::move(bad)});
  }
  // statically identical (static tier)
  pairs.push_back({gen::qft(4), gen::qft(4)});
  // transform-produced: mapped QFT (general tier, stripped residual)
  {
    const auto g = gen::qft(4);
    auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(4));
    pairs.push_back({g, std::move(mapped.circuit)});
  }
  // transform-produced: decomposed Clifford+T with an injected error
  {
    const auto g = gen::randomCliffordT(4, 40, 7);
    tf::ErrorInjector injector(7);
    auto injected = injector.injectRandom(g);
    pairs.push_back({g, std::move(injected.circuit)});
  }

  const ec::SerializeOptions verdictOnly{.verdictOnly = true};
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::string reference;
    for (const bool prescreen : {false, true}) {
      for (const unsigned threads : {1U, 4U}) {
        ec::FlowConfiguration config;
        config.simulation.seed = 31;
        config.simulation.numThreads = threads;
        config.prescreen.enabled = prescreen;
        const ec::EquivalenceCheckingFlow flow(config);
        const std::string json =
            toJson(flow.run(pairs[i].g, pairs[i].gPrime), verdictOnly);
        if (reference.empty()) {
          reference = json;
        } else {
          EXPECT_EQ(json, reference)
              << "pair " << i << " prescreen=" << prescreen << " threads="
              << threads;
        }
      }
    }
  }
}

TEST(TierRouting, RoutingIsByteStableAcrossThreadCounts) {
  // The routed flow's own redacted serialization (tier, stripped counts,
  // verdict) must not depend on the worker count either.
  const auto g = gen::qft(4);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(4));
  const ec::SerializeOptions redact{.redactProfile = true};
  std::string reference;
  for (const unsigned threads : {1U, 2U, 8U}) {
    ec::FlowConfiguration config;
    config.simulation.seed = 13;
    config.simulation.numThreads = threads;
    const ec::EquivalenceCheckingFlow flow(config);
    const std::string json = toJson(flow.run(g, mapped.circuit), redact);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << threads << " threads";
    }
  }
}

TEST(TierRouting, StabilizerTierBuildsNoDecisionDiagrams) {
  // A Clifford-only pair must be decided entirely inside the stabilizer
  // tier: the trace may contain tier.stabilizer spans but no checker.*
  // (simulation or alternating) spans — no DD is ever built.
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back();
  obs::Tracer tracer;
  const ec::EquivalenceCheckingFlow flow;
  const auto result =
      flow.run(paperCircuitG(), bad, obs::Context{&tracer, nullptr});
  EXPECT_EQ(result.equivalence, ec::Equivalence::NotEquivalent);
  EXPECT_EQ(result.tier, analysis::TierHint::Stabilizer);

  bool sawStabilizerSpan = false;
  for (const obs::SpanEvent& event : tracer.events()) {
    sawStabilizerSpan = sawStabilizerSpan || event.name == "tier.stabilizer";
    EXPECT_EQ(event.name.rfind("checker.", 0), std::string::npos)
        << "DD-backed checker span " << event.name
        << " in a stabilizer-tier run";
  }
  EXPECT_TRUE(sawStabilizerSpan);
}

TEST(TierRouting, StrippedResidualPairKeepsTheVerdict) {
  // A shared prefix/suffix around a non-trivial core: the flow hands the
  // residuals to the complete check and still returns the right verdict.
  const auto core = gen::qft(3);
  const auto mapped = tf::mapCircuit(core, tf::CouplingMap::linear(3));
  ir::QuantumComputation g(3);
  ir::QuantumComputation gPrime(3);
  const auto wrap = [](ir::QuantumComputation& qc,
                       const ir::QuantumComputation& body) {
    qc.h(0);
    qc.cx(0, 1);
    for (const auto& op : body.withMaterializedLayouts()) {
      qc.emplace(op);
    }
    qc.cx(1, 2);
    qc.h(2);
  };
  wrap(g, core);
  wrap(gPrime, mapped.circuit);

  ec::FlowConfiguration config;
  config.simulation.seed = 3;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, gPrime);
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
  EXPECT_EQ(result.tier, analysis::TierHint::General);
  EXPECT_GE(result.strippedPrefix, 2U);
  EXPECT_GE(result.strippedSuffix, 2U);
}
