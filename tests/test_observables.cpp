// Pauli expectation-value tests: textbook states, cross-checks against
// single-qubit marginals, and physical invariants of generated circuits.

#include "gen/chemistry.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/observables.hpp"

#include <gtest/gtest.h>

using namespace qsimec;

TEST(Observables, ComputationalBasisStates) {
  dd::Package pkg(3);
  const auto zero = pkg.makeZeroState();
  EXPECT_NEAR(sim::expectationValue(pkg, zero, {{0, 'Z'}}), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, zero, {{0, 'X'}}), 0.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, zero, {{0, 'Y'}}), 0.0, 1e-12);

  const auto one = pkg.makeBasisState(0b010);
  EXPECT_NEAR(sim::expectationValue(pkg, one, {{1, 'Z'}}), -1.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, one, {{0, 'Z'}, {1, 'Z'}}), -1.0,
              1e-12);
}

TEST(Observables, PlusAndYEigenstates) {
  dd::Package pkg(1);
  ir::QuantumComputation plus(1);
  plus.h(0);
  const auto p = sim::simulate(plus, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(sim::expectationValue(pkg, p, {{0, 'X'}}), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, p, {{0, 'Z'}}), 0.0, 1e-12);

  ir::QuantumComputation plusI(1);
  plusI.h(0);
  plusI.s(0);
  const auto pi = sim::simulate(plusI, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(sim::expectationValue(pkg, pi, {{0, 'Y'}}), 1.0, 1e-12);
}

TEST(Observables, BellStateCorrelations) {
  dd::Package pkg(2);
  ir::QuantumComputation bell(2);
  bell.h(1);
  bell.cx(1, 0);
  const auto b = sim::simulate(bell, pkg.makeZeroState(), pkg);
  // <ZZ> = <XX> = 1, <YY> = -1, single-qubit expectations vanish
  EXPECT_NEAR(sim::expectationValue(pkg, b, {{0, 'Z'}, {1, 'Z'}}), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, b, {{0, 'X'}, {1, 'X'}}), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, b, {{0, 'Y'}, {1, 'Y'}}), -1.0,
              1e-12);
  EXPECT_NEAR(sim::expectationValue(pkg, b, {{0, 'Z'}}), 0.0, 1e-12);
}

TEST(Observables, ZExpectationMatchesMarginals) {
  // <Z_q> = 1 - 2 P(q = 1)
  const auto qc = gen::hubbardTrotter(1, 2, {.trotterSteps = 1});
  dd::Package pkg(qc.qubits());
  const auto state = sim::simulate(qc, pkg.makeBasisState(0b0110), pkg);
  for (std::size_t q = 0; q < qc.qubits(); ++q) {
    const double z =
        sim::expectationValue(pkg, state, {{static_cast<dd::Var>(q), 'Z'}});
    const double p1 = pkg.probabilityOfOne(state, static_cast<dd::Var>(q));
    EXPECT_NEAR(z, 1.0 - 2.0 * p1, 1e-9) << "qubit " << q;
  }
}

TEST(Observables, ParticleNumberIsConservedByHubbard) {
  // N = sum_q (1 - Z_q)/2 commutes with the Hubbard Hamiltonian: its
  // expectation is invariant under Trotter evolution
  const auto qc = gen::hubbardTrotter(1, 2, {.trotterSteps = 3});
  dd::Package pkg(qc.qubits());
  const std::uint64_t input = 0b0101; // two particles
  const auto state = sim::simulate(qc, pkg.makeBasisState(input), pkg);
  double number = 0;
  for (std::size_t q = 0; q < qc.qubits(); ++q) {
    number += (1.0 - sim::expectationValue(
                         pkg, state, {{static_cast<dd::Var>(q), 'Z'}})) /
              2.0;
  }
  EXPECT_NEAR(number, 2.0, 1e-9);
}

TEST(Observables, PauliStringParser) {
  const auto terms = sim::parsePauliString("XIZY");
  ASSERT_EQ(terms.size(), 3U);
  EXPECT_EQ(terms[0], sim::PauliTerm(3, 'X'));
  EXPECT_EQ(terms[1], sim::PauliTerm(1, 'Z'));
  EXPECT_EQ(terms[2], sim::PauliTerm(0, 'Y'));
  EXPECT_THROW((void)sim::parsePauliString("XQ"), std::invalid_argument);
}

TEST(Observables, InvalidAxisThrows) {
  dd::Package pkg(1);
  const auto zero = pkg.makeZeroState();
  EXPECT_THROW((void)sim::expectationValue(pkg, zero, {{0, 'Q'}}),
               std::invalid_argument);
}
