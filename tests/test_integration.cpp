// Integration tests: complete design-flow pipelines exercised end to end,
// exactly as the paper frames them — generate G, derive G' via synthesis /
// decomposition / mapping / optimization, optionally inject an error, and
// verify with the combined equivalence checking flow.

#include "ec/flow.hpp"
#include "gen/grover.hpp"
#include "gen/qft.hpp"
#include "gen/revlib_like.hpp"
#include "gen/supremacy.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "gen/random_circuits.hpp"
#include "synth/transformation_based.hpp"
#include "sim/dense_simulator.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"

#include <gtest/gtest.h>

using namespace qsimec;
using ec::Equivalence;

namespace {

ec::EquivalenceCheckingFlow makeFlow(std::uint64_t seed = 1) {
  ec::FlowConfiguration config;
  config.simulation.seed = seed;
  config.complete.timeoutSeconds = 60;
  return ec::EquivalenceCheckingFlow(config);
}

} // namespace

TEST(Pipeline, SynthesizeDecomposeMapVerify) {
  // reversible function -> MCT circuit -> elementary gates -> routed device
  // circuit; every stage must remain equivalent to the first
  const auto tt = synth::TruthTable::hiddenWeightedBit(4);
  const auto g = synth::synthesize(tt, "hwb4");

  const auto decomposed = tf::decompose(g);
  const auto padded = tf::padQubits(g, decomposed.qubits());

  const auto flow = makeFlow();
  EXPECT_TRUE(ec::provedEquivalent(flow.run(padded, decomposed).equivalence));

  const auto mapped =
      tf::mapCircuit(decomposed, tf::CouplingMap::linear(decomposed.qubits()));
  EXPECT_TRUE(
      ec::provedEquivalent(flow.run(decomposed, mapped.circuit).equivalence));
  // transitivity: the mapped circuit still realizes the original function
  EXPECT_TRUE(
      ec::provedEquivalent(flow.run(padded, mapped.circuit).equivalence));
}

TEST(Pipeline, ErrorInMappedCircuitIsCaughtBySimulation) {
  const auto g = tf::decompose(gen::grover(4, 0b1011));
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::ring(g.qubits()));

  tf::ErrorInjector injector(3);
  const auto broken =
      injector.inject(mapped.circuit, tf::ErrorKind::WrongTargetCX);

  ec::FlowConfiguration config;
  config.simulation.seed = 9;
  config.skipComplete = true; // simulation alone must find it
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, broken.circuit);
  EXPECT_EQ(result.equivalence, Equivalence::NotEquivalent)
      << broken.error.description;
  ASSERT_TRUE(result.counterexample.has_value());

  // independently confirm the counterexample with the dense simulator
  const auto dense1 =
      sim::DenseSimulator::simulate(g, result.counterexample->input);
  const auto dense2 = sim::DenseSimulator::simulate(
      broken.circuit, result.counterexample->input);
  std::complex<double> overlap{0, 0};
  for (std::size_t i = 0; i < dense1.size(); ++i) {
    overlap += std::conj(dense1[i]) * dense2[i];
  }
  EXPECT_LT(std::norm(overlap), 1.0 - 1e-8);
}

TEST(Pipeline, OptimizedGroverStaysEquivalent) {
  const auto g = tf::decompose(gen::grover(4, 5));
  tf::OptimizerOptions options;
  options.fuseSingleQubitGates = true;
  const auto optimized = tf::optimize(g, options);
  EXPECT_LT(optimized.size(), g.size());
  const auto flow = makeFlow(4);
  EXPECT_TRUE(ec::provedEquivalent(flow.run(g, optimized).equivalence));
}

TEST(Pipeline, QasmRoundTripOfFullPipeline) {
  const auto g = gen::qft(5);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(5));
  // the writer requires materialized layouts; decompose the output
  // permutation into SWAP gates first
  ir::QuantumComputation materialized(mapped.circuit.qubits());
  for (const auto& op : mapped.circuit) {
    materialized.emplace(op);
  }
  // undo the output permutation explicitly: logical i sits on wire perm[i];
  // appending the permutation's swaps in reverse restores identity wiring
  const auto swaps = mapped.circuit.outputPermutation().toSwaps();
  for (auto it = swaps.rbegin(); it != swaps.rend(); ++it) {
    materialized.swap(it->first, it->second);
  }

  const auto text = io::toQasmString(materialized);
  const auto parsed = io::parseQasmString(text);
  const auto flow = makeFlow(6);
  EXPECT_TRUE(ec::provedEquivalent(flow.run(g, parsed).equivalence));
}

TEST(Pipeline, RealFormatRoundTripOfSynthesizedCircuit) {
  const auto g = gen::urfCircuit(5, 31);
  const auto parsed = io::parseRealString(io::toRealString(g), "reparsed");
  EXPECT_EQ(synth::TruthTable::fromCircuit(parsed),
            synth::TruthTable::fromCircuit(g));
}

TEST(Pipeline, SupremacyMappedAndVerified) {
  const auto g = gen::supremacy(2, 3, 6, 11);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(6));
  const auto flow = makeFlow(12);
  const auto result = flow.run(g, mapped.circuit);
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));

  tf::ErrorInjector injector(17);
  const auto broken = injector.injectRandom(mapped.circuit);
  const auto bad = flow.run(g, broken.circuit);
  EXPECT_EQ(bad.equivalence, Equivalence::NotEquivalent);
}

TEST(Pipeline, SingleSimulationUsuallySuffices) {
  // Table Ia's striking column: #sims = 1 almost everywhere. Check that on
  // a batch of random instances with random errors, the large majority are
  // detected by the very first simulation.
  std::size_t first = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto g = gen::randomCircuit(6, 50, 100 + seed);
    tf::ErrorInjector injector(200 + seed);
    const auto injected = injector.injectRandom(g);

    ec::SimulationConfiguration config;
    config.seed = 300 + seed;
    config.maxSimulations = 64;
    const ec::SimulationChecker checker(config);
    const auto result = checker.run(g, injected.circuit);
    if (result.equivalence == Equivalence::NotEquivalent) {
      ++total;
      if (result.simulations == 1) {
        ++first;
      }
    }
  }
  EXPECT_GT(total, 8U);
  EXPECT_GE(first * 10, total * 6); // >= 60% caught by the first run
}
