// The per-gate cost attribution profiler and its observability surface.
//
// The load-bearing properties: (1) per-gate samples are exact — node deltas
// sum to the aggregate delta and bound the peak-live trajectory; (2) the
// structural counters are a pure function of the logical run sequence, so
// the redacted serialization (wall nanos and the address-dependent cache
// counters dropped) is byte-identical across thread counts; (3)
// attribution never changes a verdict — disabling it leaves
// the flow result untouched; (4) the OpenMetrics exposition and the run
// report built from attr.* journal events round-trip through their own
// validators/parsers.

#include "dd/attribution.hpp"
#include "dd/package.hpp"
#include "ec/alternating_checker.hpp"
#include "ec/attribution.hpp"
#include "ec/flow.hpp"
#include "ec/serialize.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "obs/context.hpp"
#include "obs/journal.hpp"
#include "obs/openmetrics.hpp"
#include "obs/run_report.hpp"
#include "sim/dd_simulator.hpp"
#include "transform/error_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace {

using namespace qsimec;

TEST(AttributionCollector, SamplesSumToAggregates) {
  const auto qc = gen::qft(5);
  dd::Package pkg(qc.qubits());
  dd::AttributionCollector collector(pkg);
  const auto out = sim::simulate(qc, pkg.makeBasisState(3), pkg, nullptr,
                                 &collector, dd::AttrSide::Left);
  ASSERT_GT(dd::Package::size(out), 0U);

  const dd::AttributionData data = collector.take();
  ASSERT_FALSE(data.empty());

  std::uint64_t applications = 0;
  std::int64_t deltaSum = 0;
  std::int64_t live = data.nodesLiveStart;
  std::int64_t maxPositivePrefix = data.nodesLiveStart;
  for (const dd::GateCostSample& sample : data.samples) {
    EXPECT_EQ(sample.side, dd::AttrSide::Left);
    EXPECT_GT(sample.applications, 0U);
    applications += sample.applications;
    deltaSum += sample.nodesDelta;
    live += std::max<std::int64_t>(sample.nodesDelta, 0);
    maxPositivePrefix = std::max(maxPositivePrefix, live);
  }
  EXPECT_EQ(applications, data.gatesApplied);
  // every applied gate contributed exactly one delta: the samples tile the
  // whole aggregate, nothing double-counted, nothing dropped
  EXPECT_EQ(deltaSum, data.nodesDeltaTotal);
  // the peak-live trajectory is bracketed by the per-gate deltas: at least
  // the start, at most the sum of all growth steps
  EXPECT_GE(static_cast<std::int64_t>(data.peakNodesLive),
            data.nodesLiveStart);
  EXPECT_LE(static_cast<std::int64_t>(data.peakNodesLive),
            maxPositivePrefix);
  // take() resets: a second take is empty
  EXPECT_TRUE(collector.take().empty());
}

TEST(AttributionCollector, MergePoolsPerGateSamples) {
  const auto qc = gen::qft(4);
  dd::AttributionData merged;
  std::uint64_t totalGates = 0;
  for (int round = 0; round < 3; ++round) {
    dd::Package pkg(qc.qubits());
    dd::AttributionCollector collector(pkg);
    (void)sim::simulate(qc, pkg.makeBasisState(round), pkg, nullptr,
                        &collector, dd::AttrSide::Right);
    dd::AttributionData data = collector.take();
    totalGates += data.gatesApplied;
    merged.mergeFrom(data);
  }
  EXPECT_EQ(merged.gatesApplied, totalGates);
  // identical circuit each round: the merged per-gate table has one row
  // per gate index with applications == 3
  for (const dd::GateCostSample& sample : merged.samples) {
    EXPECT_EQ(sample.applications, 3U);
    EXPECT_EQ(sample.side, dd::AttrSide::Right);
  }
  const std::int64_t deltaSum = std::accumulate(
      merged.samples.begin(), merged.samples.end(), std::int64_t{0},
      [](std::int64_t acc, const dd::GateCostSample& s) {
        return acc + s.nodesDelta;
      });
  EXPECT_EQ(deltaSum, merged.nodesDeltaTotal);
}

TEST(AttributionProfile, HotspotsAreRankedAndCapped) {
  const auto g = gen::qft(5);
  const auto gPrime = gen::qftAlternative(5);
  ec::AlternatingConfiguration config;
  config.attribution.topK = 4;
  const ec::AlternatingChecker checker(config);
  const ec::CheckResult result = checker.run(g, gPrime);
  ASSERT_TRUE(result.attribution.has_value());

  const ec::AttributionProfile& profile = *result.attribution;
  EXPECT_EQ(profile.checker, "alternating");
  EXPECT_GT(profile.gatesApplied, 0U);
  EXPECT_LE(profile.hotspots.size(), 4U);
  // ranking is nodesDelta-first and wall-time-free (determinism)
  for (std::size_t i = 0; i + 1 < profile.hotspots.size(); ++i) {
    EXPECT_GE(profile.hotspots[i].nodesDelta,
              profile.hotspots[i + 1].nodesDelta);
  }
  // the alternating checker consumed gates from both sides
  EXPECT_GT(profile.advancesLeft, 0U);
  EXPECT_GT(profile.advancesRight, 0U);
  EXPECT_EQ(profile.nodesDeltaLeft + profile.nodesDeltaRight,
            profile.nodesDeltaTotal);
}

TEST(AttributionProfile, PortfolioStimuliCoverEveryRun) {
  const auto g = gen::randomCircuit(5, 30, 11);
  ec::SimulationConfiguration config;
  config.maxSimulations = 6;
  config.numThreads = 3;
  config.seed = 5;
  const ec::SimulationChecker checker(config);
  const ec::CheckResult result = checker.run(g, g);
  ASSERT_TRUE(result.attribution.has_value());

  const ec::AttributionProfile& profile = *result.attribution;
  EXPECT_EQ(profile.checker, "simulation");
  // equivalent pair: every configured run completes, so the per-stimulus
  // table covers the full logical sequence 0..r-1
  ASSERT_EQ(profile.stimuli.size(), 6U);
  for (std::size_t i = 0; i < profile.stimuli.size(); ++i) {
    EXPECT_EQ(profile.stimuli[i].runIndex, i);
    EXPECT_GT(profile.stimuli[i].gatesApplied, 0U);
  }
}

TEST(AttributionProfile, DisabledChangesNothingButTheProfile) {
  const auto g = gen::randomCircuit(5, 40, 3);
  tf::ErrorInjector injector(3);
  const auto injected = injector.injectRandom(g);
  const ec::SerializeOptions verdictOnly{.verdictOnly = true};

  for (const auto* gPrime : {&g, &injected.circuit}) {
    ec::FlowConfiguration enabled;
    enabled.simulation.seed = 9;
    ec::FlowConfiguration disabled = enabled;
    disabled.simulation.attribution.enabled = false;
    disabled.complete.attribution.enabled = false;

    const ec::FlowResult on =
        ec::EquivalenceCheckingFlow(enabled).run(g, *gPrime);
    const ec::FlowResult off =
        ec::EquivalenceCheckingFlow(disabled).run(g, *gPrime);

    EXPECT_EQ(on.equivalence, off.equivalence);
    EXPECT_EQ(on.simulations, off.simulations);
    EXPECT_EQ(on.counterexample.has_value(), off.counterexample.has_value());
    if (on.counterexample && off.counterexample) {
      EXPECT_EQ(on.counterexample->input, off.counterexample->input);
    }
    EXPECT_EQ(ec::toJson(on, verdictOnly), ec::toJson(off, verdictOnly));
    EXPECT_FALSE(off.simulationAttribution.has_value());
    EXPECT_FALSE(off.completeAttribution.has_value());
  }
}

TEST(AttributionProfile, RedactedJsonIsIdenticalAcrossThreadCounts) {
  const auto g = gen::randomCircuit(5, 40, 21);
  const ec::SerializeOptions redact{.redactProfile = true};
  std::string reference;
  for (const unsigned threads : {1U, 2U, 8U}) {
    ec::FlowConfiguration config;
    config.simulation.seed = 31;
    config.simulation.numThreads = threads;
    // identical circuits resolve statically otherwise — force the general
    // simulation + DD path so both attribution profiles are exercised
    config.prescreen.enabled = false;
    const ec::FlowResult result =
        ec::EquivalenceCheckingFlow(config).run(g, g);
    ASSERT_TRUE(result.simulationAttribution.has_value());
    const std::string json = ec::toJson(result, redact);
    // the redacted serialization still carries the attribution profiles —
    // the byte comparison below covers them, not just the verdict
    EXPECT_NE(json.find("\"simulation_attribution\""), std::string::npos);
    EXPECT_EQ(json.find("wall_nanos"), std::string::npos);
    // cache counters follow the node address layout (compute/unique tables
    // hash pointers), so redaction must drop them too
    EXPECT_EQ(json.find("compute_lookups"), std::string::npos);
    EXPECT_EQ(json.find("unique_lookups"), std::string::npos);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "threads=" << threads;
    }
  }
}

TEST(OpenMetrics, RenderedExpositionValidatesCleanly) {
  obs::MetricsRegistry registry;
  registry.add("simulation.runs", 6);
  registry.add("complete.dd.apply_ops", 123);
  registry.set("dd.nodes_live", 42.5);
  for (const double v : {0.001, 0.002, 0.004, 0.5, 3.0}) {
    registry.observe("pair.seconds", v);
  }

  const std::string text = obs::renderOpenMetrics(registry.snapshot());
  EXPECT_NE(text.find("qsimec_simulation_runs_total 6"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qsimec_pair_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);

  const std::vector<obs::OpenMetricsIssue> issues =
      obs::validateOpenMetrics(text);
  for (const obs::OpenMetricsIssue& issue : issues) {
    ADD_FAILURE() << "line " << issue.line << ": " << issue.message;
  }
}

TEST(OpenMetrics, ValidatorRejectsBrokenExpositions) {
  // missing # EOF
  EXPECT_FALSE(obs::validateOpenMetrics("# TYPE a counter\na_total 1\n")
                   .empty());
  // counter sample without the _total suffix
  EXPECT_FALSE(
      obs::validateOpenMetrics("# TYPE a counter\na 1\n# EOF\n").empty());
  // sample without TYPE metadata
  EXPECT_FALSE(obs::validateOpenMetrics("b 1\n# EOF\n").empty());
  // histogram with non-cumulative buckets
  EXPECT_FALSE(obs::validateOpenMetrics("# TYPE h histogram\n"
                                        "h_bucket{le=\"1\"} 5\n"
                                        "h_bucket{le=\"+Inf\"} 3\n"
                                        "h_sum 1\nh_count 3\n# EOF\n")
                   .empty());
  // content after EOF
  EXPECT_FALSE(obs::validateOpenMetrics("# EOF\nx 1\n").empty());
  // a clean minimal exposition passes
  EXPECT_TRUE(obs::validateOpenMetrics("# TYPE a counter\n# HELP a help\n"
                                       "a_total 1\n# EOF\n")
                  .empty());
}

TEST(OpenMetrics, SanitizesDottedAndLeadingDigitNames) {
  EXPECT_EQ(obs::sanitizeMetricName("simulation.dd.apply_ops"),
            "simulation_dd_apply_ops");
  EXPECT_EQ(obs::sanitizeMetricName("0weird"), "_0weird");
  EXPECT_EQ(obs::sanitizeMetricName(""), "_");
}

TEST(RunReport, FoldsRealJournalIntoHotspotsAndStages) {
  const auto g = gen::qft(5);
  const auto gPrime = gen::qftAlternative(5);
  obs::Journal journal;
  obs::Context obsContext;
  obsContext.journal = &journal;

  ec::FlowConfiguration config;
  config.simulation.maxSimulations = 3;
  config.prescreen.enabled = false; // route through both DD checkers
  const ec::FlowResult result =
      ec::EquivalenceCheckingFlow(config).run(g, gPrime, obsContext);
  ASSERT_TRUE(result.completeAttribution.has_value());

  const obs::RunReport report = obs::parseRunJournal(journal.lines());
  EXPECT_EQ(report.malformedLines, 0U);
  EXPECT_GT(report.events, 0U);
  EXPECT_FALSE(report.interleaved);
  EXPECT_FALSE(report.stages.empty());
  EXPECT_EQ(report.verdictCounts.count("equivalent"), 1U);
  ASSERT_FALSE(report.hotspots.empty());
  // hotspots aggregate attr.hotspot events; ranking is nodesDelta-first
  for (std::size_t i = 0; i + 1 < report.hotspots.size(); ++i) {
    EXPECT_GE(report.hotspots[i].nodesDelta,
              report.hotspots[i + 1].nodesDelta);
  }

  const std::string markdown = obs::renderRunReport(report);
  EXPECT_NE(markdown.find("## Stage waterfall"), std::string::npos);
  EXPECT_NE(markdown.find("## Hotspot gates"), std::string::npos);
  obs::RunReportOptions html;
  html.format = obs::RunReportOptions::Format::Html;
  EXPECT_NE(obs::renderRunReport(report, html).find("<!DOCTYPE html>"),
            std::string::npos);
}

TEST(RunReport, JournalStatsGroupLatenciesByFamilyAndTier) {
  const std::vector<std::string> lines = {
      R"({"ts_micros":1,"level":"info","event":"flow.start"})",
      R"({"ts_micros":2,"level":"info","event":"flow.verdict",)"
      R"("outcome":"equivalent","tier":"general","total_seconds":0.25})",
      R"({"ts_micros":3,"level":"info","event":"svc.pair.verdict",)"
      R"("outcome":"equivalent","seconds":0.125})",
      "not json at all",
      "",
  };
  const obs::JournalStats stats = obs::computeJournalStats(lines);
  EXPECT_EQ(stats.events, 3U);
  EXPECT_EQ(stats.malformedLines, 1U);

  const auto family = std::find_if(
      stats.families.begin(), stats.families.end(),
      [](const obs::JournalStats::Row& r) {
        return r.key == "svc.pair.verdict";
      });
  ASSERT_NE(family, stats.families.end());
  EXPECT_EQ(family->hist.count, 1U);
  EXPECT_DOUBLE_EQ(family->hist.sum, 0.125);

  ASSERT_EQ(stats.tiers.size(), 1U);
  EXPECT_EQ(stats.tiers[0].key, "general");
  EXPECT_DOUBLE_EQ(stats.tiers[0].hist.sum, 0.25);

  const std::string rendered = obs::renderJournalStats(stats);
  EXPECT_NE(rendered.find("Latency by tier"), std::string::npos);
}

} // namespace
