// Equivalence checker tests: all three checkers (construction, alternating
// with every strategy, simulation) plus the combined Fig. 3 flow, on known
// equivalent and non-equivalent circuit pairs.

#include "ec/construction_checker.hpp"
#include "ec/diff_analysis.hpp"
#include "ec/error_localization.hpp"
#include "ec/rewriting_checker.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/random_circuits.hpp"
#include "util/deadline.hpp"
#include "ec/flow.hpp"
#include "gen/qft.hpp"
#include "transform/mapper.hpp"

#include <gtest/gtest.h>

#include <numbers>

using namespace qsimec;
using ec::Equivalence;

namespace {

/// G: the 3-qubit example circuit from Fig. 1b of the paper.
ir::QuantumComputation paperCircuitG() {
  ir::QuantumComputation qc(3, "fig1b");
  qc.h(1);
  qc.cx(1, 0); // CNOT with control q1, target q0
  qc.h(2);
  qc.h(1);
  qc.cx(2, 1);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

/// A mapped variant: same functionality with extra SWAP pairs inserted.
ir::QuantumComputation paperCircuitGPrime() {
  ir::QuantumComputation qc(3, "fig2");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.swap(1, 2);
  qc.cx(1, 2); // acts like cx(2,1) before the swap
  qc.swap(1, 2);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

} // namespace

TEST(ConstructionChecker, EquivalentPair) {
  const ec::ConstructionChecker checker;
  const auto result = checker.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, Equivalence::Equivalent);
}

TEST(ConstructionChecker, DetectsMissingGate) {
  auto g = paperCircuitG();
  auto bad = paperCircuitG();
  bad.ops().pop_back();
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(g, bad).equivalence, Equivalence::NotEquivalent);
}

TEST(ConstructionChecker, GlobalPhaseIsRecognized) {
  ir::QuantumComputation a(1);
  a.rz(0.5, 0);
  ir::QuantumComputation b(1);
  b.phase(0.5, 0); // P(l) = e^{il/2} RZ(l)
  const ec::ConstructionChecker checker;
  EXPECT_EQ(checker.run(a, b).equivalence,
            Equivalence::EquivalentUpToGlobalPhase);
}

TEST(ConstructionChecker, RejectsMismatchedQubitCounts) {
  const ec::ConstructionChecker checker;
  EXPECT_THROW((void)checker.run(ir::QuantumComputation(2),
                                 ir::QuantumComputation(3)),
               std::invalid_argument);
}

TEST(ConstructionChecker, TimeoutYieldsNoInformation) {
  ir::QuantumComputation big(14);
  for (int rep = 0; rep < 200; ++rep) {
    for (ir::Qubit q = 0; q < 14; ++q) {
      big.u3(0.1 + q + rep, 0.2, 0.3, q);
      big.cx(q, static_cast<ir::Qubit>((q + 1) % 14));
    }
  }
  ec::ConstructionConfiguration config;
  config.timeoutSeconds = 0.05;
  const ec::ConstructionChecker checker(config);
  const auto result = checker.run(big, big);
  EXPECT_EQ(result.equivalence, Equivalence::NoInformation);
  EXPECT_TRUE(result.timedOut);
}

class AlternatingStrategyTest : public ::testing::TestWithParam<ec::Strategy> {};

TEST_P(AlternatingStrategyTest, EquivalentPair) {
  ec::AlternatingConfiguration config;
  config.strategy = GetParam();
  const ec::AlternatingChecker checker(config);
  const auto result = checker.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
}

TEST_P(AlternatingStrategyTest, DetectsWrongSwapBug) {
  // Example 6: the last SWAP applied to the wrong qubit pair
  auto bad = paperCircuitGPrime();
  ec::AlternatingConfiguration config;
  config.strategy = GetParam();
  // replace the second swap(1,2) with swap(0,1)
  int seen = 0;
  for (auto& op : bad.ops()) {
    if (op.type() == ir::OpType::SWAP && ++seen == 2) {
      op = ir::StandardOperation(ir::OpType::SWAP, {0, 1});
    }
  }
  ASSERT_EQ(seen, 2);
  const ec::AlternatingChecker checker(config);
  EXPECT_EQ(checker.run(paperCircuitG(), bad).equivalence,
            Equivalence::NotEquivalent);
}

TEST_P(AlternatingStrategyTest, DifferentGateCountsStillWork) {
  ir::QuantumComputation a(2);
  a.h(0);
  ir::QuantumComputation b(2);
  b.h(0);
  b.x(1);
  b.x(1); // cancels
  ec::AlternatingConfiguration config;
  config.strategy = GetParam();
  const ec::AlternatingChecker checker(config);
  EXPECT_TRUE(ec::provedEquivalent(checker.run(a, b).equivalence));
}

TEST_P(AlternatingStrategyTest, EmptyCircuitsAreEquivalent) {
  ec::AlternatingConfiguration config;
  config.strategy = GetParam();
  const ec::AlternatingChecker checker(config);
  EXPECT_EQ(checker.run(ir::QuantumComputation(2), ir::QuantumComputation(2))
                .equivalence,
            Equivalence::Equivalent);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AlternatingStrategyTest,
                         ::testing::Values(ec::Strategy::Naive,
                                           ec::Strategy::Proportional,
                                           ec::Strategy::Lookahead),
                         [](const auto& info) {
                           return std::string(ec::toString(info.param));
                         });

TEST(ConstructionChecker, TimeoutInterruptsSingleHugeMultiply) {
  // QFT functionality construction explodes: a single matrix multiply
  // would run for minutes. The in-operation interrupt hook must stop it
  // near the budget, not at the next gate boundary.
  const auto g = gen::qft(26);
  ec::ConstructionConfiguration config;
  config.timeoutSeconds = 0.25;
  const ec::ConstructionChecker checker(config);
  const util::Stopwatch watch;
  const auto result = checker.run(g, gen::qftAlternative(26));
  EXPECT_TRUE(result.timedOut);
  EXPECT_LT(watch.seconds(), 5.0); // near the budget, not minutes
}

TEST(SimulationChecker, FindsSingleQubitError) {
  auto good = paperCircuitG();
  auto bad = paperCircuitG();
  bad.ops()[3] = ir::StandardOperation(ir::OpType::RX, {1}, {},
                                       {std::numbers::pi / 2 + 0.1, 0, 0});
  ec::SimulationConfiguration config;
  config.seed = 7;
  const ec::SimulationChecker checker(config);
  const auto result = checker.run(good, bad);
  EXPECT_EQ(result.equivalence, Equivalence::NotEquivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_LT(result.counterexample->fidelity, 1.0 - 1e-8);
  // single-qubit errors affect all columns: one simulation must suffice
  EXPECT_EQ(result.simulations, 1U);
}

TEST(SimulationChecker, PassesEquivalentPair) {
  ec::SimulationConfiguration config;
  config.seed = 3;
  const ec::SimulationChecker checker(config);
  const auto result = checker.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, Equivalence::ProbablyEquivalent);
  EXPECT_EQ(result.simulations, 10U);
}

TEST(SimulationChecker, GlobalPhaseIsIgnoredByDefault) {
  ir::QuantumComputation a(1);
  a.rz(0.5, 0);
  ir::QuantumComputation b(1);
  b.phase(0.5, 0);
  ec::SimulationConfiguration config;
  const ec::SimulationChecker checker(config);
  EXPECT_EQ(checker.run(a, b).equivalence, Equivalence::ProbablyEquivalent);

  config.ignoreGlobalPhase = false;
  const ec::SimulationChecker strict(config);
  EXPECT_EQ(strict.run(a, b).equivalence, Equivalence::NotEquivalent);
}

TEST(SimulationChecker, DifferenceCircuitModeAgrees) {
  // both modes must reach the same verdicts
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back();

  for (const bool difference : {false, true}) {
    ec::SimulationConfiguration config;
    config.seed = 13;
    config.simulateDifferenceCircuit = difference;
    const ec::SimulationChecker checker(config);
    EXPECT_EQ(checker.run(paperCircuitG(), bad).equivalence,
              Equivalence::NotEquivalent)
        << "difference=" << difference;
    EXPECT_EQ(checker.run(paperCircuitG(), paperCircuitGPrime()).equivalence,
              Equivalence::ProbablyEquivalent)
        << "difference=" << difference;
  }
}

TEST(SimulationChecker, DifferenceCircuitHandlesLayouts) {
  const auto g = gen::qft(6);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(6));
  ec::SimulationConfiguration config;
  config.seed = 4;
  config.simulateDifferenceCircuit = true;
  const ec::SimulationChecker checker(config);
  EXPECT_EQ(checker.run(g, mapped.circuit).equivalence,
            Equivalence::ProbablyEquivalent);
}

TEST(SimulationChecker, DeterministicUnderSeed) {
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back();
  ec::SimulationConfiguration config;
  config.seed = 11;
  const ec::SimulationChecker checker(config);
  const auto r1 = checker.run(paperCircuitG(), bad);
  const auto r2 = checker.run(paperCircuitG(), bad);
  ASSERT_TRUE(r1.counterexample.has_value());
  ASSERT_TRUE(r2.counterexample.has_value());
  EXPECT_EQ(r1.counterexample->input, r2.counterexample->input);
  EXPECT_EQ(r1.simulations, r2.simulations);
}

TEST(DiffAnalysis, SingleQubitErrorAffectsAllColumns) {
  // Example 7 of the paper: an uncontrolled difference touches every column
  auto g = paperCircuitG();
  auto bad = paperCircuitG();
  bad.h(0); // extra H at the end
  const auto analysis = ec::analyzeDifference(g, bad);
  EXPECT_EQ(analysis.totalColumns, 8U);
  EXPECT_EQ(analysis.differingColumns, 8U);
  EXPECT_DOUBLE_EQ(analysis.fraction(), 1.0);
  EXPECT_FALSE(analysis.witnesses.empty());
}

TEST(DiffAnalysis, FullyControlledErrorAffectsTwoColumns) {
  // Example 8: a difference controlled on all other qubits touches exactly
  // 2^(n-c) = 2 columns. (The base circuit must not map the affected basis
  // states onto X eigenstates, so use a diagonal circuit.)
  ir::QuantumComputation g(3);
  g.t(0);
  auto bad = g;
  bad.x(0, {ir::Control{1, true}, ir::Control{2, true}});
  const auto analysis = ec::analyzeDifference(g, bad);
  EXPECT_EQ(analysis.differingColumns, 2U);
  for (const auto w : analysis.witnesses) {
    EXPECT_EQ(w & 0b110U, 0b110U); // both controls set
  }
}

TEST(DiffAnalysis, EquivalentCircuitsHaveNoDifference) {
  const auto analysis =
      ec::analyzeDifference(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(analysis.differingColumns, 0U);
  EXPECT_TRUE(analysis.witnesses.empty());
}

TEST(DiffAnalysis, Validation) {
  EXPECT_THROW((void)ec::analyzeDifference(ir::QuantumComputation(2),
                                           ir::QuantumComputation(3)),
               std::invalid_argument);
  EXPECT_THROW((void)ec::analyzeDifference(ir::QuantumComputation(22),
                                           ir::QuantumComputation(22)),
               std::invalid_argument);
}

TEST(Localization, PinpointsModifiedGate) {
  const auto g = gen::randomCircuit(5, 60, 4);
  for (const std::size_t position : {7UL, 31UL, 59UL}) {
    auto bad = g;
    // flip a gate in place: replace with an H (guaranteed different here
    // because randomCircuit never emits H at these particular positions? —
    // verify divergence instead of assuming)
    bad.ops()[position] = ir::StandardOperation(ir::OpType::Y, {0});
    ec::SimulationConfiguration config;
    config.seed = 5;
    const auto verdict = ec::SimulationChecker(config).run(g, bad);
    if (verdict.equivalence != Equivalence::NotEquivalent) {
      continue; // replacement happened to be equivalent on all stimuli
    }
    const auto loc =
        ec::localizeError(g, bad, verdict.counterexample->input);
    ASSERT_TRUE(loc.has_value());
    // the localized gate can only be at or before the modification if an
    // earlier aligned gate already differs semantically — with one in-place
    // edit it must be exact
    EXPECT_EQ(loc->gateIndex, position);
    EXPECT_LT(loc->fidelity, 1.0 - 1e-8);
  }
}

TEST(Localization, PinpointsRemovedGate) {
  const auto g = gen::randomCircuit(5, 50, 9);
  auto bad = g;
  bad.ops().erase(bad.ops().begin() + 23);
  const auto loc = ec::localizeError(g, bad, 13);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->gateIndex, 23U);
}

TEST(Localization, NoDivergenceReturnsNullopt) {
  const auto g = paperCircuitG();
  EXPECT_FALSE(ec::localizeError(g, g, 5).has_value());
}

TEST(Localization, Validation) {
  EXPECT_THROW((void)ec::localizeError(ir::QuantumComputation(2),
                                       ir::QuantumComputation(3), 0),
               std::invalid_argument);
}

TEST(RewritingChecker, ProvesSyntacticEquivalence) {
  // G' = G with redundant gates: cancellation proves equivalence without
  // any functional construction
  ir::QuantumComputation g(3);
  g.h(0);
  g.cx(0, 1);
  g.t(2);
  ir::QuantumComputation gPrime(3);
  gPrime.h(0);
  gPrime.x(2);
  gPrime.x(2);
  gPrime.cx(0, 1);
  gPrime.s(1);
  gPrime.sdg(1);
  gPrime.t(2);
  const ec::RewritingChecker checker;
  EXPECT_EQ(checker.run(g, gPrime).equivalence, Equivalence::Equivalent);
  EXPECT_TRUE(checker.remainder(g, gPrime).empty());
}

TEST(RewritingChecker, DetectsGlobalPhaseRemainder) {
  ir::QuantumComputation a(1);
  a.h(0);
  ir::QuantumComputation b(1);
  b.h(0);
  b.gate(ir::OpType::GPhase, 0, {}, {0.7, 0, 0});
  const ec::RewritingChecker checker;
  EXPECT_EQ(checker.run(a, b).equivalence,
            Equivalence::EquivalentUpToGlobalPhase);
}

TEST(RewritingChecker, InconclusiveOnStructurallyDifferentPairs) {
  // equivalent but not syntactically reducible: H Z H = X
  ir::QuantumComputation a(1);
  a.h(0);
  a.z(0);
  a.h(0);
  ir::QuantumComputation b(1);
  b.x(0);
  const ec::RewritingChecker checker;
  EXPECT_EQ(checker.run(a, b).equivalence, Equivalence::NoInformation);
}

TEST(RewritingChecker, HandlesMappedLayouts) {
  // a mapped circuit against itself: materialized layouts + cancellation
  const auto g = gen::qft(5);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(5));
  const ec::RewritingChecker checker;
  EXPECT_TRUE(ec::provedEquivalent(
      checker.run(mapped.circuit, mapped.circuit).equivalence));
}

TEST(Flow, RewritingStageShortCircuits) {
  ir::QuantumComputation g(2);
  g.h(0);
  g.cx(0, 1);
  ir::QuantumComputation gPrime(2);
  gPrime.h(0);
  gPrime.t(1);
  gPrime.tdg(1);
  gPrime.cx(0, 1);
  ec::FlowConfiguration config;
  config.simulation.seed = 2;
  config.tryRewriting = true;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, gPrime);
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
  EXPECT_TRUE(result.provedByRewriting);
  EXPECT_EQ(result.completeSeconds, 0.0);
}

TEST(Flow, NonEquivalentDetectedBySimulation) {
  auto bad = paperCircuitGPrime();
  bad.ops().pop_back(); // drop the last CNOT
  ec::FlowConfiguration config;
  config.simulation.seed = 1;
  // this test pins the general simulation stage; the paper circuits are
  // Clifford-only and would otherwise route to the stabilizer tier
  config.prescreen.enabled = false;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(paperCircuitG(), bad);
  EXPECT_EQ(result.equivalence, Equivalence::NotEquivalent);
  EXPECT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.completeSeconds, 0.0); // complete check never ran
}

TEST(Flow, EquivalentProvedByCompleteCheck) {
  ec::FlowConfiguration config;
  config.simulation.seed = 1;
  config.prescreen.enabled = false; // exercise the general DD path
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
  EXPECT_EQ(result.simulations, 10U);
  EXPECT_GT(result.completeSeconds, 0.0);
}

TEST(Flow, TimeoutYieldsProbablyEquivalent) {
  // Note: identical circuits would NOT time out — the alternating scheme
  // cancels gate pairs and stays at the identity (the point of [22]). Two
  // structurally different but equivalent circuits whose interleaving
  // cannot stay aligned are needed: QFT vs its SWAP-routed variant, whose
  // intermediate products grow far beyond a tiny time budget.
  const auto g = gen::qft(14);
  const auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(14));
  ec::FlowConfiguration config;
  config.simulation.maxSimulations = 2;
  config.simulation.seed = 5;
  config.complete.timeoutSeconds = 0.02;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(g, mapped.circuit);
  EXPECT_EQ(result.equivalence, Equivalence::ProbablyEquivalent);
  EXPECT_TRUE(result.completeTimedOut);
}

TEST(Flow, SkipSimulationRunsCompleteOnly) {
  ec::FlowConfiguration config;
  config.skipSimulation = true;
  config.prescreen.enabled = false; // exercise the general DD path
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
  EXPECT_EQ(result.simulations, 0U);
}

TEST(Flow, SkipSimulationAlsoSuppressesStabilizerStimuli) {
  // With the prescreen on, a Clifford-only pair routes to the stabilizer
  // tier — whose randomized runs also honour skipSimulation; the exact
  // conjugation check alone decides the pair.
  ec::FlowConfiguration config;
  config.skipSimulation = true;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_TRUE(ec::provedEquivalent(result.equivalence));
  EXPECT_EQ(result.tier, analysis::TierHint::Stabilizer);
  EXPECT_EQ(result.simulations, 0U);
}

TEST(Flow, SkipCompleteGivesProbablyEquivalent) {
  ec::FlowConfiguration config;
  config.skipComplete = true;
  config.simulation.seed = 2;
  const ec::EquivalenceCheckingFlow flow(config);
  const auto result = flow.run(paperCircuitG(), paperCircuitGPrime());
  EXPECT_EQ(result.equivalence, Equivalence::ProbablyEquivalent);
}
