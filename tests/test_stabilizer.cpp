// Stabilizer (CHP) simulator tests, including cross-validation against the
// DD simulator on random Clifford circuits beyond dense-oracle sizes.

#include "gen/random_circuits.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/stabilizer_simulator.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <random>

using namespace qsimec;
using sim::StabilizerSimulator;

TEST(Stabilizer, InitialStateIsAllZeros) {
  StabilizerSimulator chp(4);
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(chp.probabilityOfOne(q), 0.0);
  }
}

TEST(Stabilizer, PauliXFlipsDeterministically) {
  StabilizerSimulator chp(3);
  chp.x(1);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.0);
  EXPECT_EQ(chp.probabilityOfOne(1), 1.0);
  chp.x(1);
  EXPECT_EQ(chp.probabilityOfOne(1), 0.0);
}

TEST(Stabilizer, HadamardGivesCoinFlip) {
  StabilizerSimulator chp(2);
  chp.h(0);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.5);
  chp.h(0);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.0);
}

TEST(Stabilizer, BellPairCorrelations) {
  StabilizerSimulator chp(2);
  chp.h(0);
  chp.cx(0, 1);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.5);
  EXPECT_EQ(chp.probabilityOfOne(1), 0.5);
  std::mt19937_64 rng(7);
  const bool first = chp.measure(0, rng);
  // after measuring one half, the other is determined
  EXPECT_EQ(chp.probabilityOfOne(1), first ? 1.0 : 0.0);
  EXPECT_EQ(chp.measure(1, rng), first);
}

TEST(Stabilizer, GhzMeasurementsAgree) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    StabilizerSimulator chp(5);
    chp.h(0);
    for (std::size_t q = 0; q + 1 < 5; ++q) {
      chp.cx(q, q + 1);
    }
    std::mt19937_64 rng(seed);
    const bool first = chp.measure(0, rng);
    for (std::size_t q = 1; q < 5; ++q) {
      EXPECT_EQ(chp.measure(q, rng), first);
    }
  }
}

TEST(Stabilizer, SGateTurnsPlusIntoPlusI) {
  // S|+> = |+i>: measuring in Z stays 0.5, applying Sdg+H recovers |0>
  StabilizerSimulator chp(1);
  chp.h(0);
  chp.s(0);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.5);
  chp.sdg(0);
  chp.h(0);
  EXPECT_EQ(chp.probabilityOfOne(0), 0.0);
}

TEST(Stabilizer, VAndSyMatchTheirDefinitions) {
  // V = H S H: V^2 = X
  StabilizerSimulator chp(1);
  ir::StandardOperation v(ir::OpType::V, {0});
  chp.apply(v);
  chp.apply(v);
  EXPECT_EQ(chp.probabilityOfOne(0), 1.0); // X|0> = |1>

  StabilizerSimulator chp2(1);
  ir::StandardOperation sy(ir::OpType::SY, {0});
  chp2.apply(sy);
  chp2.apply(sy);
  // SY^2 ∝ Y: |0> -> i|1>
  EXPECT_EQ(chp2.probabilityOfOne(0), 1.0);
}

TEST(Stabilizer, PhaseGateQuarterTurns) {
  StabilizerSimulator chp(1);
  chp.h(0);
  ir::StandardOperation p4(ir::OpType::Phase, {0}, {},
                           {std::numbers::pi, 0, 0});
  chp.apply(p4); // Z on |+> -> |-> ; H|-> = |1>
  chp.h(0);
  EXPECT_EQ(chp.probabilityOfOne(0), 1.0);

  ir::StandardOperation t(ir::OpType::Phase, {0}, {},
                          {std::numbers::pi / 4, 0, 0});
  EXPECT_THROW(chp.apply(t), std::domain_error);
}

TEST(Stabilizer, IsCliffordClassifier) {
  ir::QuantumComputation clifford(3);
  clifford.h(0);
  clifford.cx(0, 1);
  clifford.s(2);
  clifford.swap(1, 2);
  clifford.cz(0, 2);
  EXPECT_TRUE(StabilizerSimulator::isClifford(clifford));

  ir::QuantumComputation nonClifford(2);
  nonClifford.t(0);
  EXPECT_FALSE(StabilizerSimulator::isClifford(nonClifford));

  ir::QuantumComputation toffoli(3);
  toffoli.ccx(0, 1, 2);
  EXPECT_FALSE(StabilizerSimulator::isClifford(toffoli));
}

TEST(Stabilizer, NegativeControlHandled) {
  StabilizerSimulator chp(2);
  ir::StandardOperation op(ir::OpType::X, {0}, {ir::Control{1, false}});
  chp.apply(op);
  EXPECT_EQ(chp.probabilityOfOne(0), 1.0); // control qubit is |0> -> fires
}

class CliffordCrossValidation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CliffordCrossValidation, MarginalsMatchDDSimulator) {
  // 14 qubits: beyond what the dense oracle covers comfortably, easy for
  // both CHP and DDs
  const std::size_t n = 14;
  const auto qc = gen::randomCliffordT(n, 120, GetParam());
  // strip non-Clifford gates (T/Tdg) to get a Clifford circuit
  ir::QuantumComputation clifford(n);
  for (const auto& op : qc) {
    if (op.type() != ir::OpType::T && op.type() != ir::OpType::Tdg) {
      clifford.emplace(op);
    }
  }

  StabilizerSimulator chp(n);
  chp.run(clifford);

  dd::Package pkg(n);
  const auto state = sim::simulate(clifford, pkg.makeZeroState(), pkg);

  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(pkg.probabilityOfOne(state, static_cast<dd::Var>(q)),
                chp.probabilityOfOne(q), 1e-9)
        << "qubit " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliffordCrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Stabilizer, MeasurementStatisticsMatchProbability) {
  StabilizerSimulator reference(3);
  reference.h(0);
  reference.cx(0, 1);
  std::mt19937_64 rng(99);
  int ones = 0;
  const int shots = 400;
  for (int shot = 0; shot < shots; ++shot) {
    StabilizerSimulator chp(3);
    chp.h(0);
    chp.cx(0, 1);
    if (chp.measure(0, rng)) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, 0.5, 0.1);
}
