// Tests of the differential fuzzing harness (src/fuzz): determinism of the
// whole pipeline, the find -> shrink -> replay loop (driven by the
// tamperVerdict fault-injection hook, so a healthy build can exercise it),
// reproducer round-trips, the committed regression corpus, the
// ErrorInjector soundness property, and stabilizer-tier cross-validation
// including the phase-probe width boundary.

#include "ec/flow.hpp"
#include "fuzz/harness.hpp"
#include "gen/algorithms.hpp"
#include "gen/random_circuits.hpp"
#include "obs/context.hpp"
#include "transform/error_injector.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

using namespace qsimec;

namespace {

fuzz::FuzzOptions smallRun(std::size_t pairs) {
  fuzz::FuzzOptions options;
  options.seed = 7;
  options.pairs = pairs;
  options.generator.maxQubits = 4;
  options.generator.maxGates = 12;
  options.threadCounts = {1, 2};
  return options;
}

} // namespace

TEST(FuzzHarness, ConfigMatrixCoversAllDimensions) {
  const auto cells = fuzz::makeConfigMatrix({1, 4});
  EXPECT_EQ(cells.size(), 24U); // 2 prescreen x 3 strategies x 2 threads x 2 modes
  std::size_t race = 0;
  std::size_t prescreenOff = 0;
  for (const auto& cell : cells) {
    race += cell.mode == ec::FlowMode::Race ? 1 : 0;
    prescreenOff += cell.prescreen ? 0 : 1;
  }
  EXPECT_EQ(race, 12U);
  EXPECT_EQ(prescreenOff, 12U);
}

TEST(FuzzHarness, RunIsDeterministicAndCleanOnHealthyTree) {
  const auto options = smallRun(3);
  const fuzz::FuzzReport a = fuzz::runFuzz(options);
  const fuzz::FuzzReport b = fuzz::runFuzz(options);
  EXPECT_EQ(a.stats.disagreements, 0U);
  EXPECT_EQ(fuzz::summarize(options, a), fuzz::summarize(options, b));
  EXPECT_EQ(a.stats.flowRuns, a.stats.pairs * a.stats.configsPerPair);
}

TEST(FuzzHarness, PairGenerationIsIndependentOfCallOrder) {
  fuzz::PairGenerator forward(7, {});
  fuzz::PairGenerator backward(7, {});
  const auto f2 = forward.generate(2);
  const auto b0 = backward.generate(0); // disturb the sequence
  (void)b0;
  const auto again = backward.generate(2);
  EXPECT_EQ(fuzz::circuitToJson(f2.g), fuzz::circuitToJson(again.g));
  EXPECT_EQ(fuzz::circuitToJson(f2.gPrime), fuzz::circuitToJson(again.gPrime));
  EXPECT_EQ(f2.derivation, again.derivation);
}

TEST(FuzzHarness, TamperedVerdictIsFoundShrunkAndReplaysBothWays) {
  // fault injection: report every Equivalent verdict as NotEquivalent, which
  // must disagree with the oracle on genuinely equivalent pairs
  fuzz::FuzzOptions options = smallRun(4);
  options.tamperVerdict = [](ec::Equivalence e) {
    return e == ec::Equivalence::Equivalent ? ec::Equivalence::NotEquivalent
                                            : e;
  };
  const fuzz::FuzzReport report = fuzz::runFuzz(options);
  ASSERT_GT(report.stats.disagreements, 0U);

  const fuzz::Disagreement& d = report.disagreements.front();
  EXPECT_LE(d.shrunkGates, d.originalGates); // shrinking never grows the pair

  // the reproducer line round-trips losslessly
  const std::string line = fuzz::toJsonLine(d.reproducer);
  const fuzz::Reproducer parsed = fuzz::parseReproducer(line);
  EXPECT_EQ(fuzz::toJsonLine(parsed), line);

  // replayed under the same fault it still fails; on the healthy build the
  // verdicts agree again
  fuzz::FuzzOptions tampered;
  tampered.tamperVerdict = options.tamperVerdict;
  EXPECT_TRUE(fuzz::replayReproducer(parsed, tampered).disagrees);
  EXPECT_FALSE(fuzz::replayReproducer(parsed).disagrees);
}

TEST(FuzzHarness, RegressionCorpusReplaysClean) {
  // every committed reproducer must agree on the current tree, and the
  // recorded verdicts must not drift (a drift means checker semantics
  // changed — inspect before re-recording)
  const std::filesystem::path dir =
      std::filesystem::path(QSIMEC_TESTDATA_DIR) / "fuzz";
  ASSERT_TRUE(std::filesystem::exists(dir));
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".jsonl") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
      ++lineNo;
      if (line.empty()) {
        continue;
      }
      const fuzz::Reproducer r = fuzz::parseReproducer(line);
      const fuzz::ReplayResult result = fuzz::replayReproducer(r);
      EXPECT_FALSE(result.disagrees)
          << entry.path() << ":" << lineNo << " [" << toString(r.config)
          << "] flow=" << result.flowVerdict
          << " oracle=" << result.oracleVerdict;
      EXPECT_EQ(result.flowVerdict, r.flowVerdict)
          << entry.path() << ":" << lineNo;
      EXPECT_EQ(result.oracleVerdict, r.oracleVerdict)
          << entry.path() << ":" << lineNo;
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0U);
}

// --- ErrorInjector soundness ----------------------------------------------
// Every injected error class must provably change the unitary: the dense
// oracle has to call the pair NotEquivalent (not merely different by a
// global phase). The near-identity gates in the base circuits (RZ(2pi) =
// -I, Phase(2pi) = I) are the trap: removing one of those would be
// invisible, so the injector must never pick them.

namespace {

ir::QuantumComputation injectorBaseCircuit(std::size_t variant) {
  switch (variant % 3) {
  case 0: {
    ir::QuantumComputation qc(4, "trap");
    qc.h(0);
    qc.rz(2 * std::numbers::pi, 1); // = -I: not a removal candidate
    qc.cx(0, 1);
    qc.phase(2 * std::numbers::pi, 2); // = I: not a removal candidate
    qc.cx(1, 2);
    qc.t(3);
    qc.rz(0.0, 3); // = I: not a removal candidate
    qc.cx(2, 3);
    return qc;
  }
  case 1:
    return gen::randomCliffordT(5, 16, 11 + variant);
  default:
    return gen::randomCircuit(4, 14, 23 + variant);
  }
}

} // namespace

class ErrorInjectorProperty : public ::testing::TestWithParam<tf::ErrorKind> {
};

TEST_P(ErrorInjectorProperty, EveryInjectionChangesTheUnitary) {
  for (std::size_t variant = 0; variant < 6; ++variant) {
    const ir::QuantumComputation base = injectorBaseCircuit(variant);
    tf::ErrorInjector injector(100 + variant);
    const tf::InjectionResult injected = injector.inject(base, GetParam());
    const fuzz::OracleResult oracle =
        fuzz::compareCircuits(base, injected.circuit, {});
    EXPECT_EQ(oracle.verdict, fuzz::OracleVerdict::NotEquivalent)
        << "variant " << variant << ": " << injected.error.description;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ErrorInjectorProperty,
                         ::testing::Values(tf::ErrorKind::RemoveGate,
                                           tf::ErrorKind::InsertGate,
                                           tf::ErrorKind::WrongTargetCX,
                                           tf::ErrorKind::FlipControlTargetCX,
                                           tf::ErrorKind::AngleOffset,
                                           tf::ErrorKind::ReplaceGate));

// --- stabilizer tier under fuzzing ----------------------------------------

TEST(FuzzStabilizer, CliffordOnlyPairsRouteToStabilizerTierAndAgree) {
  fuzz::FuzzOptions options = smallRun(4);
  options.generator.onlyFamily = fuzz::BaseFamily::Clifford;
  const fuzz::FuzzReport report = fuzz::runFuzz(options);
  EXPECT_EQ(report.stats.disagreements, 0U);
  EXPECT_EQ(report.stats.families.at("clifford"), 4U);
  // prescreen-on cells of Clifford pairs must have hit the stabilizer tier
  EXPECT_GT(report.stats.tiers.count("stabilizer"), 0U);
}

namespace {

/// GHZ-like Clifford pair differing by ZXZX on qubit 0 (a global -1).
std::pair<ir::QuantumComputation, ir::QuantumComputation>
phaseTwistPair(std::size_t n) {
  ir::QuantumComputation g = gen::ghzState(n);
  ir::QuantumComputation gPrime = g;
  gPrime.z(0);
  gPrime.x(0);
  gPrime.z(0);
  gPrime.x(0);
  return {std::move(g), std::move(gPrime)};
}

ec::Equivalence flowVerdict(const ir::QuantumComputation& g,
                            const ir::QuantumComputation& gPrime) {
  ec::FlowConfiguration config;
  config.simulation.maxSimulations = 4;
  const obs::Context obs;
  return ec::EquivalenceCheckingFlow(config).run(g, gPrime, obs).equivalence;
}

} // namespace

TEST(FuzzStabilizer, PhaseProbeBoundaryAtElevenTwelveThirteenQubits) {
  for (const std::size_t n : {11U, 12U}) {
    const auto [g, gPrime] = phaseTwistPair(n);
    // within the probe width the -1 phase is resolved exactly
    EXPECT_EQ(flowVerdict(g, gPrime),
              ec::Equivalence::EquivalentUpToGlobalPhase)
        << n << " qubits";
    const fuzz::OracleResult oracle = fuzz::compareCircuits(g, gPrime, {});
    EXPECT_EQ(oracle.verdict,
              fuzz::OracleVerdict::EquivalentUpToGlobalPhase)
        << n << " qubits";
    EXPECT_NEAR(oracle.phase.real(), -1.0, 1e-9);
  }
  {
    // beyond phaseProbeMaxQubits = 12 the tier keeps the coarse verdict
    // even for a pair with exactly equal unitaries. The HH pair sits
    // mid-circuit so the static prescreen cannot cancel everything and the
    // stabilizer tier actually runs.
    const ir::QuantumComputation g = gen::ghzState(13);
    ir::QuantumComputation gPrime(13, "ghz13_hh");
    for (std::size_t i = 0; i < g.size(); ++i) {
      gPrime.emplace(g.at(i));
      if (i == 2) {
        gPrime.h(5);
        gPrime.h(5);
      }
    }
    EXPECT_EQ(flowVerdict(g, gPrime),
              ec::Equivalence::EquivalentUpToGlobalPhase);
    // ... and the sampled oracle still resolves the phase exactly
    const fuzz::OracleResult oracle = fuzz::compareCircuits(g, gPrime, {});
    EXPECT_FALSE(oracle.exhaustive);
    EXPECT_EQ(oracle.verdict, fuzz::OracleVerdict::Equivalent);
  }
  {
    const auto [g, gPrime] = phaseTwistPair(13);
    EXPECT_EQ(flowVerdict(g, gPrime),
              ec::Equivalence::EquivalentUpToGlobalPhase);
    const fuzz::OracleResult oracle = fuzz::compareCircuits(g, gPrime, {});
    EXPECT_EQ(oracle.verdict,
              fuzz::OracleVerdict::EquivalentUpToGlobalPhase);
  }
}
