// Reversible-synthesis tests: truth tables and the transformation-based
// (MMD) synthesis algorithm, verified against classical simulation and the
// DD-based equivalence checker.

#include "ec/construction_checker.hpp"
#include "synth/transformation_based.hpp"

#include <gtest/gtest.h>

using namespace qsimec;
using synth::TruthTable;

TEST(TruthTableTest, IdentityByDefault) {
  const TruthTable tt(3);
  EXPECT_TRUE(tt.isIdentity());
  EXPECT_EQ(tt.size(), 8U);
  EXPECT_EQ(tt.apply(5), 5U);
}

TEST(TruthTableTest, RejectsNonBijections) {
  EXPECT_THROW(TruthTable({0, 0}), std::invalid_argument);
  EXPECT_THROW(TruthTable({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(TruthTable({0, 5}), std::invalid_argument);
  EXPECT_THROW(TruthTable(0), std::invalid_argument);
  EXPECT_THROW(TruthTable(25), std::invalid_argument);
}

TEST(TruthTableTest, InverseAndCompose) {
  const TruthTable f = TruthTable::randomPermutation(4, 11);
  const TruthTable inv = f.inverse();
  EXPECT_TRUE(f.compose(inv).isIdentity());
  EXPECT_TRUE(inv.compose(f).isIdentity());
}

TEST(TruthTableTest, ToffoliUpdates) {
  TruthTable tt(3);
  tt.applyToffoliToOutputs(0b110, 0); // flip bit 0 where bits 1,2 set
  EXPECT_EQ(tt.apply(0b110), 0b111U);
  EXPECT_EQ(tt.apply(0b111), 0b110U);
  EXPECT_EQ(tt.apply(0b010), 0b010U);
  EXPECT_THROW(tt.applyToffoliToOutputs(0b001, 0), std::invalid_argument);
}

TEST(TruthTableTest, InputSideEqualsOutputSideOfInverse) {
  TruthTable a = TruthTable::randomPermutation(4, 3);
  TruthTable b = a;
  a.applyToffoliToOutputs(0b0011, 3);
  // applying the same gate on the input side of the inverse, then inverting,
  // gives the same function: (f ∘ g)^-1 = g^-1 ∘ f^-1 and g self-inverse
  TruthTable bInv = b.inverse();
  bInv.applyToffoliToInputs(0b0011, 3);
  EXPECT_EQ(a.inverse().apply(0), bInv.apply(0));
}

TEST(TruthTableTest, HiddenWeightedBitIsPermutation) {
  for (const std::size_t bits : {3UL, 5UL, 7UL}) {
    const TruthTable tt = TruthTable::hiddenWeightedBit(bits);
    EXPECT_FALSE(tt.isIdentity());
    // constructor already validated bijection; spot-check the definition
    // hwb: rotate left by popcount
    EXPECT_EQ(tt.apply(0), 0U);
    const std::uint64_t all = tt.size() - 1;
    EXPECT_EQ(tt.apply(all), all);
  }
}

TEST(TruthTableTest, WellKnownFunctions) {
  const TruthTable inc = TruthTable::increment(3);
  EXPECT_EQ(inc.apply(7), 0U);
  EXPECT_EQ(inc.apply(3), 4U);

  const TruthTable add = TruthTable::modularAdder(4);
  // (a=2, b=1) -> (2, 3): x = 0b10'01 -> 0b10'11
  EXPECT_EQ(add.apply(0b1001), 0b1011U);

  const TruthTable rev = TruthTable::bitReversal(3);
  EXPECT_EQ(rev.apply(0b001), 0b100U);
  EXPECT_EQ(rev.apply(0b110), 0b011U);

  EXPECT_THROW(TruthTable::modularAdder(3), std::invalid_argument);
}

TEST(TruthTableTest, FromCircuitMatchesGateSemantics) {
  ir::QuantumComputation qc(3);
  qc.x(0);
  qc.cx(0, 1);
  qc.swap(1, 2);
  const TruthTable tt = TruthTable::fromCircuit(qc);
  // input 000: x(0) -> 001, cx(0,1) -> 011, swap(1,2) -> 101
  EXPECT_EQ(tt.apply(0b000), 0b101U);

  ir::QuantumComputation bad(1);
  bad.h(0);
  EXPECT_THROW((void)TruthTable::fromCircuit(bad), std::domain_error);
}

class SynthesisTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisTest, RandomPermutationsAreRealizedExactly) {
  const TruthTable tt = TruthTable::randomPermutation(4, GetParam());
  synth::SynthesisStats stats;
  const auto qc = synth::synthesize(tt, "random", &stats);
  EXPECT_EQ(stats.gates, qc.size());
  EXPECT_EQ(TruthTable::fromCircuit(qc), tt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Synthesis, IdentityNeedsNoGates) {
  const auto qc = synth::synthesize(TruthTable(4));
  EXPECT_EQ(qc.size(), 0U);
}

TEST(Synthesis, HwbMatchesTable) {
  const TruthTable tt = TruthTable::hiddenWeightedBit(5);
  const auto qc = synth::synthesize(tt);
  EXPECT_EQ(TruthTable::fromCircuit(qc), tt);
}

TEST(Synthesis, NamedFunctionsRoundTrip) {
  for (const auto& tt :
       {TruthTable::increment(4), TruthTable::modularAdder(4),
        TruthTable::bitReversal(4)}) {
    const auto qc = synth::synthesize(tt);
    EXPECT_EQ(TruthTable::fromCircuit(qc), tt);
  }
}

TEST(Synthesis, AgreesWithUnitarySemantics) {
  // the synthesized MCT circuit's unitary is the permutation matrix
  const TruthTable tt = TruthTable::randomPermutation(3, 99);
  const auto qc = synth::synthesize(tt);
  const ec::ConstructionChecker checker;
  // build a reference circuit directly from the permutation via its cycles:
  // compare unitaries of two independent realizations of the same function
  const TruthTable tt2 = TruthTable::fromCircuit(qc);
  EXPECT_EQ(tt2, tt);
  // sanity: synthesizing the inverse gives the inverse circuit functionality
  const auto inv = synth::synthesize(tt.inverse());
  ir::QuantumComputation composed(qc.qubits());
  composed.append(qc);
  composed.append(inv);
  EXPECT_TRUE(TruthTable::fromCircuit(composed).isIdentity());
  EXPECT_TRUE(ec::provedEquivalent(
      checker.run(composed, ir::QuantumComputation(qc.qubits())).equivalence));
}
