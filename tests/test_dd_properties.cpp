// Property-based tests of the decision-diagram package: algebraic laws
// (unitarity, associativity, adjoint involution), canonicity (equal-by-math
// constructions are pointer-equal), and consistency of the accessors —
// swept over random seeds with parameterized gtest.

#include "dd/package.hpp"
#include "gen/random_circuits.hpp"
#include "sim/dd_simulator.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace qsimec;

namespace {

dd::mEdge randomUnitary(dd::Package& pkg, std::size_t nqubits,
                        std::uint64_t seed) {
  const auto qc = gen::randomCircuit(nqubits, 25, seed);
  return sim::buildFunctionality(qc, pkg);
}

dd::vEdge randomState(dd::Package& pkg, std::size_t nqubits,
                      std::uint64_t seed) {
  const auto qc = gen::randomCircuit(nqubits, 25, seed);
  return sim::simulate(qc, pkg.makeZeroState(), pkg);
}

} // namespace

class DDPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
protected:
  static constexpr std::size_t N = 4;
};

TEST_P(DDPropertyTest, UnitaryTimesAdjointIsIdentity) {
  dd::Package pkg(N);
  const auto u = randomUnitary(pkg, N, GetParam());
  pkg.incRef(u);
  const auto udg = pkg.conjugateTranspose(u);
  EXPECT_EQ(pkg.multiply(u, udg), pkg.makeIdent());
  EXPECT_EQ(pkg.multiply(udg, u), pkg.makeIdent());
  pkg.decRef(u);
}

TEST_P(DDPropertyTest, AdjointIsInvolution) {
  dd::Package pkg(N);
  const auto u = randomUnitary(pkg, N, GetParam());
  pkg.incRef(u);
  EXPECT_EQ(pkg.conjugateTranspose(pkg.conjugateTranspose(u)), u);
  pkg.decRef(u);
}

TEST_P(DDPropertyTest, MultiplicationIsAssociative) {
  dd::Package pkg(N);
  const auto a = randomUnitary(pkg, N, GetParam() * 3 + 0);
  pkg.incRef(a);
  const auto b = randomUnitary(pkg, N, GetParam() * 3 + 1);
  pkg.incRef(b);
  const auto c = randomUnitary(pkg, N, GetParam() * 3 + 2);
  pkg.incRef(c);
  EXPECT_EQ(pkg.multiply(pkg.multiply(a, b), c),
            pkg.multiply(a, pkg.multiply(b, c)));
  pkg.decRef(a);
  pkg.decRef(b);
  pkg.decRef(c);
}

TEST_P(DDPropertyTest, AdditionCommutesAndAssociates) {
  dd::Package pkg(N);
  const auto x = randomState(pkg, N, GetParam() * 5 + 0);
  pkg.incRef(x);
  const auto y = randomState(pkg, N, GetParam() * 5 + 1);
  pkg.incRef(y);
  const auto z = randomState(pkg, N, GetParam() * 5 + 2);
  pkg.incRef(z);
  EXPECT_EQ(pkg.add(x, y), pkg.add(y, x));
  EXPECT_EQ(pkg.add(pkg.add(x, y), z), pkg.add(x, pkg.add(y, z)));
  pkg.decRef(x);
  pkg.decRef(y);
  pkg.decRef(z);
}

TEST_P(DDPropertyTest, MatrixVectorDistributesOverAddition) {
  dd::Package pkg(N);
  const auto u = randomUnitary(pkg, N, GetParam() * 7 + 0);
  pkg.incRef(u);
  const auto x = randomState(pkg, N, GetParam() * 7 + 1);
  pkg.incRef(x);
  const auto y = randomState(pkg, N, GetParam() * 7 + 2);
  pkg.incRef(y);
  const auto lhs = pkg.multiply(u, pkg.add(x, y));
  const auto rhs = pkg.add(pkg.multiply(u, x), pkg.multiply(u, y));
  // numerically equal; allow structural comparison via fidelity of the
  // normalized difference (pointer equality can be broken by rounding on
  // different evaluation orders)
  pkg.incRef(lhs);
  const auto overlap = pkg.innerProduct(lhs, rhs);
  const double n1 = pkg.innerProduct(lhs, lhs).re;
  const double n2 = pkg.innerProduct(rhs, rhs).re;
  EXPECT_NEAR(overlap.mag2() / (n1 * n2), 1.0, 1e-9);
  EXPECT_NEAR(n1, n2, 1e-9);
  pkg.decRef(lhs);
  pkg.decRef(u);
  pkg.decRef(x);
  pkg.decRef(y);
}

TEST_P(DDPropertyTest, UnitariesPreserveNorm) {
  dd::Package pkg(N);
  const auto u = randomUnitary(pkg, N, GetParam() * 11 + 0);
  pkg.incRef(u);
  const auto x = randomState(pkg, N, GetParam() * 11 + 1);
  pkg.incRef(x);
  const auto ux = pkg.multiply(u, x);
  EXPECT_NEAR(pkg.norm2(ux), pkg.norm2(x), 1e-9);
  pkg.decRef(u);
  pkg.decRef(x);
}

TEST_P(DDPropertyTest, InnerProductIsConjugateSymmetric) {
  dd::Package pkg(N);
  const auto x = randomState(pkg, N, GetParam() * 13 + 0);
  pkg.incRef(x);
  const auto y = randomState(pkg, N, GetParam() * 13 + 1);
  const auto xy = pkg.innerProduct(x, y);
  const auto yx = pkg.innerProduct(y, x);
  EXPECT_NEAR(xy.re, yx.re, 1e-10);
  EXPECT_NEAR(xy.im, -yx.im, 1e-10);
  pkg.decRef(x);
}

TEST_P(DDPropertyTest, CommutingGateOrdersAreCanonical) {
  // diagonal gates commute: applying them in any order must produce the
  // SAME canonical DD (pointer equality)
  dd::Package pkg(N);
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  std::vector<dd::mEdge> gates;
  for (std::size_t q = 0; q < N; ++q) {
    gates.push_back(pkg.makeGateDD(dd::phaseMat(angle(rng)),
                                   static_cast<dd::Var>(q)));
    pkg.incRef(gates.back());
  }
  dd::vEdge base = randomState(pkg, N, GetParam() + 100);
  pkg.incRef(base);

  dd::vEdge forward = base;
  for (const auto& g : gates) {
    forward = pkg.multiply(g, forward);
  }
  dd::vEdge backward = base;
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    backward = pkg.multiply(*it, backward);
  }
  EXPECT_EQ(forward, backward);
  pkg.decRef(base);
  for (const auto& g : gates) {
    pkg.decRef(g);
  }
}

TEST_P(DDPropertyTest, GetVectorMatchesGetAmplitude) {
  dd::Package pkg(N);
  const auto x = randomState(pkg, N, GetParam() * 17);
  const auto vec = pkg.getVector(x);
  for (std::uint64_t i = 0; i < vec.size(); ++i) {
    const auto amp = pkg.getAmplitude(x, i);
    EXPECT_DOUBLE_EQ(vec[i].re, amp.re);
    EXPECT_DOUBLE_EQ(vec[i].im, amp.im);
  }
}

TEST_P(DDPropertyTest, ProductStateAmplitudesFactorize) {
  dd::Package pkg(N);
  std::mt19937_64 rng(GetParam() * 19);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<std::pair<dd::ComplexValue, dd::ComplexValue>> amps;
  for (std::size_t q = 0; q < N; ++q) {
    dd::ComplexValue a0{u(rng), u(rng)};
    dd::ComplexValue a1{u(rng), u(rng)};
    if (a0.approximatelyZero() && a1.approximatelyZero()) {
      a0 = {1, 0};
    }
    amps.emplace_back(a0, a1);
  }
  const auto state = pkg.makeProductState(amps);
  for (std::uint64_t i = 0; i < (1ULL << N); ++i) {
    dd::ComplexValue expected{1, 0};
    for (std::size_t q = 0; q < N; ++q) {
      expected = expected * (((i >> q) & 1U) ? amps[q].second : amps[q].first);
    }
    const auto actual = pkg.getAmplitude(state, i);
    EXPECT_NEAR(actual.re, expected.re, 1e-9);
    EXPECT_NEAR(actual.im, expected.im, 1e-9);
  }
}

TEST_P(DDPropertyTest, GarbageCollectionPreservesResults) {
  dd::Package pkg(N);
  const auto qc = gen::randomCircuit(N, 30, GetParam() * 23);
  dd::vEdge expected = sim::simulate(qc, pkg.makeZeroState(), pkg);
  pkg.incRef(expected);
  // force aggressive collection, then recompute: canonical result identical
  pkg.garbageCollect(true);
  const dd::vEdge again = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_EQ(again, expected);
  pkg.decRef(expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));
