// Tests of the flight recorder, stall watchdog and postmortem diagnostics
// (src/obs/flight_recorder, src/obs/postmortem): ring semantics (drop
// oldest, global sequence numbers, per-thread slots), watchdog quiet/
// deadline triggers, dump render/parse roundtrips, redaction determinism,
// the batch scheduler's watchdog-backed stall containment, and the
// async-signal-safe fatal dump path (as a death test).

#include "ec/alternating_checker.hpp"
#include "gen/qft.hpp"
#include "io/qasm.hpp"
#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/postmortem.hpp"
#include "svc/batch.hpp"
#include "util/json_parse.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <latch>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qsimec;
using namespace std::chrono_literals;
namespace fs = std::filesystem;

fs::path freshDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("qsimec_flight_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------- rings

TEST(FlightRing, DropOldestKeepsTheNewestEvents) {
  obs::FlightRecorder recorder(
      obs::FlightRecorder::Options{.eventsPerThread = 8, .maxThreads = 4});
  for (int i = 0; i < 20; ++i) {
    recorder.record(obs::FlightEventKind::Journal, "e", i);
  }
  EXPECT_EQ(recorder.eventsRecorded(), 20U);
  EXPECT_EQ(recorder.eventsDropped(), 12U);
  ASSERT_GE(recorder.slotCount(), 1U);
  const auto& ring = recorder.slot(0);
  EXPECT_EQ(ring.head.load(), 20U);
  std::set<std::uint64_t> seqs;
  for (std::size_t k = 0; k < recorder.eventCapacity(); ++k) {
    seqs.insert(ring.events[k].seq);
  }
  // the survivors are exactly the last 8 recorded events
  EXPECT_EQ(seqs, (std::set<std::uint64_t>{12, 13, 14, 15, 16, 17, 18, 19}));
}

TEST(FlightRing, ConcurrentWritersGetPrivateRingsAndUniqueSeqs) {
  obs::FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kEvents = 200;
  {
    // hold every writer alive until all have registered: an exited writer
    // releases its slot for reuse (by design), which would collapse the
    // distinct-slot assertion below
    std::latch allDone(kThreads);
    std::vector<std::jthread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&recorder, &allDone, t] {
        recorder.labelThread("writer." + std::to_string(t));
        for (int i = 0; i < kEvents; ++i) {
          recorder.record(obs::FlightEventKind::Mark, "w", t, i);
        }
        allDone.arrive_and_wait();
      });
    }
  }
  EXPECT_EQ(recorder.eventsRecorded(), kThreads * kEvents);
  EXPECT_EQ(recorder.eventsDropped(), 0U);
  EXPECT_EQ(recorder.threadsRegistered(), kThreads);
  std::set<std::uint64_t> seqs;
  for (std::size_t s = 0; s < recorder.slotCount(); ++s) {
    const auto& ring = recorder.slot(s);
    const std::uint64_t h = ring.head.load();
    for (std::uint64_t k = 0; k < h; ++k) {
      seqs.insert(ring.events[k & (recorder.eventCapacity() - 1)].seq);
    }
  }
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kThreads * kEvents));
}

// Regression: the per-thread ring cache and the live-recorder registry key
// on a process-unique recorder id, not the recorder's address. A recorder
// constructed where a destroyed one lived (the classic stack-reuse pattern
// of a benchmark or test loop) must acquire a fresh ring, not revive the
// freed one.
TEST(FlightRing, FreshRecorderAtReusedAddressGetsAFreshRing) {
  for (int round = 0; round < 4; ++round) {
    obs::FlightRecorder recorder(
        obs::FlightRecorder::Options{.eventsPerThread = 64, .maxThreads = 4});
    for (int i = 0; i < 100; ++i) {
      recorder.record(obs::FlightEventKind::Journal, "round", round, i);
    }
    EXPECT_EQ(recorder.eventsRecorded(), 100U);
  }
}

TEST(FlightRing, GateWindowAndLabelLandInTheSlot) {
  obs::FlightRecorder recorder;
  recorder.labelThread("checker");
  recorder.noteGate(17, 23);
  const auto& ring = recorder.slot(0);
  EXPECT_EQ(ring.gateLeft.load(), 17);
  EXPECT_EQ(ring.gateRight.load(), 23);
  EXPECT_EQ(ring.labelState.load(), 2U);
  EXPECT_STREQ(ring.label, "checker");
}

TEST(FlightRing, PairNotesClaimReleaseAndExhaust) {
  obs::FlightRecorder recorder;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < obs::FlightRecorder::kMaxPairNotes; ++i) {
    ids.push_back(recorder.notePair("pair " + std::to_string(i), "abcd"));
    EXPECT_EQ(ids.back(), i);
  }
  // exhausted: the overflow claim reports "no slot" instead of clobbering
  EXPECT_EQ(recorder.notePair("overflow", ""),
            obs::FlightRecorder::kMaxPairNotes);
  recorder.clearPair(ids[3]);
  EXPECT_EQ(recorder.notePair("reused", ""), 3U);
}

// ------------------------------------------------------------------- watchdog

TEST(Watchdog, DeclaresAQuietHeartbeatStalled) {
  obs::FlightRecorder recorder;
  const std::atomic<std::uint64_t>* beat = recorder.heartbeatSlot();
  ASSERT_NE(beat, nullptr);
  obs::Watchdog watchdog(recorder);
  std::promise<obs::Watchdog::StallInfo> fired;
  auto future = fired.get_future();
  watchdog.watch("quiet.worker", beat, 0.15, 0.0,
                 [&fired](const obs::Watchdog::StallInfo& info) {
                   fired.set_value(info);
                 });
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  const obs::Watchdog::StallInfo info = future.get();
  EXPECT_EQ(info.reason, "quiet");
  EXPECT_EQ(info.label, "quiet.worker");
  EXPECT_GE(info.heartbeatAgeMicros, 150000U);
  // one-shot: the entry never fires twice
  std::this_thread::sleep_for(250ms);
  EXPECT_EQ(watchdog.stallsDeclared(), 1U);
}

TEST(Watchdog, DeclaresADeadlineOverrunDespiteHeartbeats) {
  obs::FlightRecorder recorder;
  const std::atomic<std::uint64_t>* beat = recorder.heartbeatSlot();
  obs::Watchdog watchdog(recorder);
  std::promise<obs::Watchdog::StallInfo> fired;
  auto future = fired.get_future();
  watchdog.watch("busy.worker", beat, 0.0, 0.15,
                 [&fired](const obs::Watchdog::StallInfo& info) {
                   fired.set_value(info);
                 });
  // keep beating the whole time: only the hard deadline can fire
  const auto until = std::chrono::steady_clock::now() + 3s;
  while (future.wait_for(0s) != std::future_status::ready &&
         std::chrono::steady_clock::now() < until) {
    recorder.beat();
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(future.get().reason, "deadline");
}

TEST(Watchdog, NeverFiresWhileTheHeartbeatIsFresh) {
  obs::FlightRecorder recorder;
  const std::atomic<std::uint64_t>* beat = recorder.heartbeatSlot();
  obs::Watchdog watchdog(recorder);
  const std::uint64_t id =
      watchdog.watch("healthy.worker", beat, 0.3, 0.0,
                     [](const obs::Watchdog::StallInfo&) { FAIL(); });
  const auto until = std::chrono::steady_clock::now() + 500ms;
  while (std::chrono::steady_clock::now() < until) {
    recorder.beat();
    std::this_thread::sleep_for(30ms);
  }
  EXPECT_EQ(watchdog.stallsDeclared(), 0U);
  watchdog.unwatch(id);
  // unwatched entries are gone: going quiet no longer counts
  std::this_thread::sleep_for(450ms);
  EXPECT_EQ(watchdog.stallsDeclared(), 0U);
}

// ----------------------------------------------------------------- postmortem

TEST(Postmortem, RenderParseRoundtrip) {
  obs::FlightRecorder recorder;
  recorder.labelThread("main");
  recorder.notePair("pair 0", "00ff00ff00ff00ff00ff00ff00ff00ff");
  recorder.record(obs::FlightEventKind::SpanBegin, "flow");
  recorder.record(obs::FlightEventKind::Journal, "flow.start", 1);
  recorder.record(obs::FlightEventKind::Gc, "dd.gc", 128, 900);
  recorder.record(obs::FlightEventKind::Mark, "flow.verdict", 0);
  recorder.record(obs::FlightEventKind::SpanEnd, "flow");
  recorder.noteGate(5, 7);

  obs::MetricsSnapshot metrics;
  metrics.counters["flight.events"] = recorder.eventsRecorded();
  obs::PostmortemOptions options;
  options.reason = "timeout";
  options.label = "roundtrip";
  options.metrics = &metrics;
  const std::string text = obs::renderPostmortem(recorder, options);

  std::istringstream in(text);
  const obs::PostmortemReport report = obs::parsePostmortem(in);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.reason, "timeout");
  EXPECT_EQ(report.label, "roundtrip");
  EXPECT_FALSE(report.redacted);
  EXPECT_EQ(report.eventsRecorded, 5U);
  ASSERT_EQ(report.pairs.size(), 1U);
  EXPECT_EQ(report.pairs[0].label, "pair 0");
  ASSERT_EQ(report.threads.size(), 1U);
  EXPECT_EQ(report.threads[0].label, "main");
  EXPECT_EQ(report.threads[0].gateLeft, 5);
  EXPECT_EQ(report.threads[0].gateRight, 7);
  ASSERT_EQ(report.events.size(), 5U);
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    EXPECT_LT(report.events[i - 1].seq, report.events[i].seq);
  }
  EXPECT_EQ(report.events[2].kind, "gc");
  EXPECT_EQ(report.events[2].a, 128);
  EXPECT_FALSE(report.metricsJson.empty());

  // both inspector renderings accept the parsed report
  const std::string md = obs::renderPostmortemMarkdown(report);
  EXPECT_NE(md.find("## Timeline"), std::string::npos);
  EXPECT_NE(md.find("## Threads"), std::string::npos);
  EXPECT_NE(md.find("flow.verdict"), std::string::npos);
  const util::JsonValue json = util::parseJson(obs::renderPostmortemJson(report));
  EXPECT_EQ(json.at("reason").asString(), "timeout");
  EXPECT_EQ(json.at("events").elements().size(), 5U);
}

TEST(Postmortem, RedactedDumpKeepsOnlyTheDeterministicSubset) {
  obs::FlightRecorder recorder;
  recorder.labelThread("noisy");
  recorder.notePair("pair 0", "feed");
  recorder.record(obs::FlightEventKind::Mark, "simulation", 1);
  recorder.record(obs::FlightEventKind::Journal, "wallclock.noise", 2);
  recorder.record(obs::FlightEventKind::Gauge, "dd.gauges", 3, 4);
  recorder.record(obs::FlightEventKind::Mark, "flow.verdict", 0);

  obs::PostmortemOptions options;
  options.redact = true;
  const std::string text = obs::renderPostmortem(recorder, options);
  EXPECT_EQ(text.find("wallclock.noise"), std::string::npos);
  EXPECT_EQ(text.find("ts_micros"), std::string::npos);
  EXPECT_EQ(text.find("\"type\":\"thread\""), std::string::npos);

  std::istringstream in(text);
  const obs::PostmortemReport report = obs::parsePostmortem(in);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_TRUE(report.redacted);
  ASSERT_EQ(report.events.size(), 2U);
  EXPECT_EQ(report.events[0].kind, "mark");
  EXPECT_EQ(report.events[0].name, "simulation");
  EXPECT_EQ(report.events[1].name, "flow.verdict");
}

TEST(Postmortem, ParserRejectsGarbageAndFlagsTruncation) {
  std::istringstream garbage("this is not json\n");
  EXPECT_FALSE(obs::parsePostmortem(garbage).valid);

  std::istringstream wrongSchema(R"({"schema":"other-v1","x":1})"
                                 "\n");
  EXPECT_FALSE(obs::parsePostmortem(wrongSchema).valid);

  // a valid header without the end trailer parses but reports truncation —
  // the shape of a dump cut off mid-write by a dying process
  std::istringstream truncated(
      R"({"schema":"qsimec-postmortem-v1","version":1,"reason":"signal","label":"","redacted":false})"
      "\n");
  const obs::PostmortemReport report = obs::parsePostmortem(truncated);
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.complete);
  EXPECT_NE(obs::renderPostmortemMarkdown(report).find("WARNING"),
            std::string::npos);
}

// The acceptance tie between the ring and the attribution window: when the
// complete check dies on a budget, the slot still names the in-flight gate
// indices (noteGate is only cleared on clean exits).
TEST(Postmortem, GateIndexSurvivesABudgetDeath) {
  const ir::QuantumComputation qc = gen::qft(5);
  obs::FlightRecorder recorder;
  obs::Context obs;
  obs.flight = &recorder;
  ec::AlternatingConfiguration config;
  config.maxNodes = 8; // trips ResourceLimitExceeded mid-construction
  const ec::CheckResult result =
      ec::AlternatingChecker(config).run(qc, qc, obs);
  ASSERT_TRUE(result.timedOut);
  const auto& ring = recorder.slot(0);
  EXPECT_GE(ring.gateLeft.load(), 0);

  // and a clean run clears the window back to "nothing in flight"
  ec::AlternatingConfiguration clean;
  const ec::CheckResult ok = ec::AlternatingChecker(clean).run(qc, qc, obs);
  ASSERT_FALSE(ok.timedOut);
  EXPECT_EQ(ring.gateLeft.load(), -1);
  EXPECT_EQ(ring.gateRight.load(), -1);
}

// ------------------------------------------------------------ batch stalls

TEST(BatchStall, WatchdogResolvesTheWedgedPairAndTheBatchSurvives) {
  const fs::path dir = freshDir("batch");
  const ir::QuantumComputation big = gen::qft(4);
  ir::QuantumComputation small(2, "pair1");
  small.h(0);
  small.cx(0, 1);
  const std::string bigPath = (dir / "big.qasm").string();
  const std::string smallPath = (dir / "small.qasm").string();
  std::ofstream(bigPath) << io::toQasmString(big);
  std::ofstream(smallPath) << io::toQasmString(small);

  std::istringstream manifestText(
      "{\"g\": \"" + bigPath + "\", \"gp\": \"" + bigPath + "\"}\n" +
      "{\"g\": \"" + smallPath + "\", \"gp\": \"" + smallPath + "\"}\n");
  const svc::BatchManifest manifest =
      svc::parseManifest(manifestText, ec::FlowConfiguration{});

  obs::Journal journal;
  std::ostringstream journalOut;
  journal.streamTo(&journalOut);
  obs::Context obs;
  obs.journal = &journal;

  svc::BatchOptions options;
  options.threads = 2;
  options.stallQuietSeconds = 0.25;
  options.postmortemDir = dir.string();

  ASSERT_EQ(::setenv("QSIMEC_SELFTEST_STALL_WORKER", "0", 1), 0);
  const svc::BatchResult result =
      svc::BatchScheduler(options).run(manifest, obs);
  ::unsetenv("QSIMEC_SELFTEST_STALL_WORKER");
  journal.streamTo(nullptr);

  ASSERT_EQ(result.outcomes.size(), 2U);
  const svc::PairOutcome& stalled = result.outcomes[0];
  EXPECT_TRUE(stalled.stalled);
  EXPECT_EQ(stalled.equivalence, ec::Equivalence::NoInformation);
  ASSERT_FALSE(stalled.dumpRef.empty());
  const obs::PostmortemReport dump = obs::parsePostmortemFile(stalled.dumpRef);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_EQ(dump.reason, "stall");

  // the rest of the batch finished normally
  const svc::PairOutcome& healthy = result.outcomes[1];
  EXPECT_FALSE(healthy.stalled);
  EXPECT_TRUE(ec::provedEquivalent(healthy.equivalence));
  EXPECT_EQ(result.summary.stalled, 1U);
  EXPECT_GE(result.summary.inconclusive, 1U);
  EXPECT_NE(journalOut.str().find("svc.pair.stalled"), std::string::npos);

  // stalled outcomes serialize their dump reference (unredacted only)
  const std::string line = svc::toJsonLine(stalled);
  EXPECT_NE(line.find("\"stalled\":true"), std::string::npos);
  EXPECT_NE(line.find("dump_ref"), std::string::npos);
  const std::string redacted =
      svc::toJsonLine(stalled, svc::BatchSerializeOptions{.redact = true});
  EXPECT_EQ(redacted.find("dump_ref"), std::string::npos);

  fs::remove_all(dir);
}

TEST(BatchStall, StallHookIsInertWithoutAnArmedWatchdog) {
  const fs::path dir = freshDir("inert");
  ir::QuantumComputation qc(2, "p");
  qc.h(0);
  const std::string path = (dir / "p.qasm").string();
  std::ofstream(path) << io::toQasmString(qc);
  std::istringstream manifestText("{\"g\": \"" + path + "\", \"gp\": \"" +
                                  path + "\"}\n");
  const svc::BatchManifest manifest =
      svc::parseManifest(manifestText, ec::FlowConfiguration{});

  // no stall/deadline options: the env hook must not wedge the batch
  ASSERT_EQ(::setenv("QSIMEC_SELFTEST_STALL_WORKER", "0", 1), 0);
  const svc::BatchResult result =
      svc::BatchScheduler(svc::BatchOptions{}).run(manifest);
  ::unsetenv("QSIMEC_SELFTEST_STALL_WORKER");
  ASSERT_EQ(result.outcomes.size(), 1U);
  EXPECT_FALSE(result.outcomes[0].stalled);
  EXPECT_EQ(result.summary.stalled, 0U);
  fs::remove_all(dir);
}

// ----------------------------------------------------------- signal dump path

TEST(SignalDumpDeathTest, AbortMidRunLeavesAParseableDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // the threadsafe death-test child re-execs and re-runs this body up to
  // EXPECT_EXIT with its own pid, so the directory must not embed one
  const fs::path dir = fs::temp_directory_path() / "qsimec_flight_sig_death";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string dumpPath = obs::signalDumpPath(dir.string());

  EXPECT_EXIT(
      {
        obs::FlightRecorder recorder;
        recorder.labelThread("doomed");
        recorder.notePair("pair 7", "00ff00ff00ff00ff00ff00ff00ff00ff");
        for (int i = 0; i < 100; ++i) {
          recorder.record(obs::FlightEventKind::Journal, "pre.crash", i);
        }
        recorder.noteGate(12, 34);
        obs::armSignalDump(&recorder, dir.string());
        std::raise(SIGABRT);
      },
      ::testing::KilledBySignal(SIGABRT), "");

  const obs::PostmortemReport report = obs::parsePostmortemFile(dumpPath);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_EQ(report.reason, "signal");
  EXPECT_EQ(report.signal, SIGABRT);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.pairs.size(), 1U);
  EXPECT_EQ(report.pairs[0].label, "pair 7");
  ASSERT_GE(report.threads.size(), 1U);
  EXPECT_EQ(report.threads[0].gateLeft, 12);
  EXPECT_EQ(report.threads[0].gateRight, 34);
  bool sawPreCrash = false;
  for (const obs::PostmortemEvent& e : report.events) {
    sawPreCrash = sawPreCrash || e.name == "pre.crash";
  }
  EXPECT_TRUE(sawPreCrash);
  fs::remove_all(dir);
}

// ----------------------------------------------------------------- openmetrics

TEST(FlightMetrics, HealthCountersExportLintClean) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["flight.events"] = 4242;
  snapshot.counters["flight.events_dropped"] = 7;
  snapshot.gauges["watchdog.heartbeat_age_micros.t0"] = 1234.0;
  snapshot.gauges["watchdog.heartbeat_age_micros.t1"] = 88.0;
  const std::string text = obs::renderOpenMetrics(snapshot, {});
  EXPECT_TRUE(obs::validateOpenMetrics(text).empty());
  EXPECT_NE(text.find("flight_events_dropped"), std::string::npos);
  EXPECT_NE(text.find("watchdog_heartbeat_age_micros"), std::string::npos);
}

// ------------------------------------------------------------------ CLI level

struct CommandResult {
  int exitCode{};
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(QSIMEC_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    result.exitCode = -1;
    return result;
  }
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  result.exitCode = WEXITSTATUS(pclose(pipe));
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST(FlightCli, RedactedDumpIsByteIdenticalAcrossThreadCounts) {
  const fs::path dir = freshDir("cli");
  const std::string circuit = (dir / "c.qasm").string();
  ASSERT_EQ(runCli("gen random 5 60 " + circuit + " --seed 3").exitCode, 0);
  const auto checkWith = [&](const std::string& tag, unsigned threads) {
    const std::string pmDir = (dir / tag).string();
    const CommandResult result = runCli(
        "check " + circuit + " " + circuit + " --sims 6 --no-prescreen" +
        " --threads " + std::to_string(threads) + " --postmortem " + pmDir +
        " --postmortem-redact");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    return slurp(pmDir + "/postmortem-check.jsonl");
  };
  const std::string dump1 = checkWith("t1", 1);
  const std::string dump4 = checkWith("t4", 4);
  ASSERT_FALSE(dump1.empty());
  EXPECT_EQ(dump1, dump4);
  // the redacted dump still renders through the inspector
  const CommandResult render =
      runCli("postmortem " + (dir / "t1" / "postmortem-check.jsonl").string());
  EXPECT_EQ(render.exitCode, 0) << render.output;
  EXPECT_NE(render.output.find("redacted: true"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FlightCli, InspectorRendersJsonAndRejectsGarbage) {
  const fs::path dir = freshDir("inspect");
  const std::string circuit = (dir / "c.qasm").string();
  ASSERT_EQ(runCli("gen qft 3 " + circuit).exitCode, 0);
  const std::string pmDir = (dir / "pm").string();
  ASSERT_EQ(runCli("check " + circuit + " " + circuit + " --sims 2" +
                   " --postmortem " + pmDir)
                .exitCode,
            0);
  const CommandResult json =
      runCli("postmortem " + pmDir + "/postmortem-check.jsonl --json");
  EXPECT_EQ(json.exitCode, 0) << json.output;
  const util::JsonValue doc = util::parseJson(json.output);
  EXPECT_EQ(doc.at("reason").asString(), "complete");

  const std::string garbage = (dir / "garbage.jsonl").string();
  std::ofstream(garbage) << "not a dump\n";
  EXPECT_EQ(runCli("postmortem " + garbage).exitCode, 2);
  fs::remove_all(dir);
}

} // namespace
