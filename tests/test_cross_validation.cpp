// Cross-validation sweep: for every circuit family the library generates,
// the DD-built functionality must match the dense simulator's matrix
// entry-for-entry at small sizes. This is the broadest single correctness
// net in the suite — any systematic error in gate semantics, layout
// handling, or DD algebra shows up here.

#include "gen/algorithms.hpp"
#include "gen/chemistry.hpp"
#include "gen/grover.hpp"
#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "gen/revlib_like.hpp"
#include "gen/supremacy.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense_simulator.hpp"
#include "transform/decomposition.hpp"
#include "transform/mapper.hpp"

#include <gtest/gtest.h>

#include <functional>

using namespace qsimec;

namespace {

struct Family {
  const char* name;
  std::function<ir::QuantumComputation()> make;
};

void expectMatchesDense(const ir::QuantumComputation& qc, double eps = 1e-9) {
  ASSERT_LE(qc.qubits(), 10U) << "keep cross-validation cases small";
  dd::Package pkg(qc.qubits());
  const auto u = sim::buildFunctionality(qc, pkg);
  const auto dense = sim::DenseSimulator::buildMatrix(qc);
  const std::uint64_t dim = 1ULL << qc.qubits();
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = 0; c < dim; ++c) {
      const auto e = pkg.getEntry(u, r, c);
      ASSERT_NEAR(e.re, dense[r][c].real(), eps)
          << qc.name() << " entry (" << r << "," << c << ")";
      ASSERT_NEAR(e.im, dense[r][c].imag(), eps)
          << qc.name() << " entry (" << r << "," << c << ")";
    }
  }
}

} // namespace

class CrossValidation : public ::testing::TestWithParam<Family> {};

TEST_P(CrossValidation, FunctionalityMatchesDenseOracle) {
  expectMatchesDense(GetParam().make());
}

TEST_P(CrossValidation, MappedVariantMatchesDenseOracle) {
  const auto qc = GetParam().make();
  bool mappable = true;
  for (const auto& op : qc) {
    mappable = mappable && op.usedQubits().size() <= 2;
  }
  if (!mappable || qc.qubits() < 2) {
    GTEST_SKIP() << "multi-qubit gates: decompose before mapping";
  }
  const auto mapped =
      tf::mapCircuit(qc, tf::CouplingMap::linear(qc.qubits()));
  expectMatchesDense(mapped.circuit);
}

INSTANTIATE_TEST_SUITE_P(
    Families, CrossValidation,
    ::testing::Values(
        Family{"qft5", [] { return gen::qft(5); }},
        Family{"qft5_noswap", [] { return gen::qft(5, false); }},
        Family{"qft_alt5", [] { return gen::qftAlternative(5); }},
        Family{"grover4", [] { return gen::grover(4, 9); }},
        Family{"grover4_decomposed",
               [] { return tf::decompose(gen::grover(4, 9)); }},
        Family{"supremacy2x3",
               [] { return gen::supremacy(2, 3, 6, 11); }},
        Family{"chemistry1x2", [] { return gen::hubbardTrotter(1, 2); }},
        Family{"hwb4", [] { return gen::hwbCircuit(4); }},
        Family{"hwb4_decomposed",
               [] { return tf::decompose(gen::hwbCircuit(4)); }},
        Family{"urf4", [] { return gen::urfCircuit(4, 3); }},
        Family{"adder6", [] { return gen::adderCircuit(6); }},
        Family{"inc5", [] { return gen::incrementCircuit(5); }},
        Family{"bv4", [] { return gen::bernsteinVazirani(4, 0b1010); }},
        Family{"dj4", [] { return gen::deutschJozsa(4, true, 5); }},
        Family{"qpe4", [] { return gen::qpe(4, 0.3125); }},
        Family{"ghz6", [] { return gen::ghzState(6); }},
        Family{"w6", [] { return gen::wState(6); }},
        Family{"clifford_t6",
               [] { return gen::randomCliffordT(6, 60, 13); }},
        Family{"random6", [] { return gen::randomCircuit(6, 50, 21); }}),
    [](const auto& info) { return std::string(info.param.name); });
