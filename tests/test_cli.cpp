// End-to-end tests of the qsimec CLI binary (spawned as a subprocess):
// generate -> info -> convert -> check pipelines, exit codes, --json,
// --trace, and --metrics.

#include "util/json_lint.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct CommandResult {
  int exitCode{};
  std::string output;
};

CommandResult runCli(const std::string& args) {
  const std::string command =
      std::string(QSIMEC_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    result.exitCode = -1;
    return result;
  }
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exitCode = WEXITSTATUS(status);
  return result;
}

class CliTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("qsimec_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

} // namespace

TEST_F(CliTest, HelpExitsCleanly) {
  const auto result = runCli("help");
  EXPECT_EQ(result.exitCode, 0);
  EXPECT_NE(result.output.find("simulation-first equivalence checking"),
            std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(runCli("frobnicate").exitCode, 2);
}

TEST_F(CliTest, GenerateInfoConvertCheckPipeline) {
  const std::string real = path("hwb.real");
  const std::string qasm = path("hwb.qasm");

  auto gen = runCli("gen hwb 4 " + real);
  ASSERT_EQ(gen.exitCode, 0) << gen.output;
  ASSERT_TRUE(fs::exists(real));

  auto info = runCli("info " + real);
  EXPECT_EQ(info.exitCode, 0);
  EXPECT_NE(info.output.find("qubits:  4"), std::string::npos);

  auto convert = runCli("convert " + real + " " + qasm);
  ASSERT_EQ(convert.exitCode, 0) << convert.output;
  ASSERT_TRUE(fs::exists(qasm));

  auto check = runCli("check " + real + " " + qasm + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output; // equivalent
  EXPECT_NE(check.output.find("equivalent"), std::string::npos);
}

TEST_F(CliTest, NonEquivalentPairExitsWithOne) {
  const std::string a = path("a.qasm");
  const std::string b = path("b.qasm");
  ASSERT_EQ(runCli("gen qft 4 " + a).exitCode, 0);
  {
    std::ofstream os(b);
    os << "OPENQASM 2.0;\nqreg q[4];\nh q[0];\n";
  }
  const auto check = runCli("check " + a + " " + b + " --sim-only");
  EXPECT_EQ(check.exitCode, 1);
  EXPECT_NE(check.output.find("not equivalent"), std::string::npos);
  EXPECT_NE(check.output.find("counterexample"), std::string::npos);
}

TEST_F(CliTest, JsonOutputIsParseableShape) {
  const std::string a = path("g.qasm");
  ASSERT_EQ(runCli("gen ghz 3 " + a).exitCode, 0);
  const auto check = runCli("check " + a + " " + a + " --json --timeout 30");
  EXPECT_EQ(check.exitCode, 0);
  EXPECT_EQ(check.output.front(), '{');
  EXPECT_NE(check.output.find("\"equivalence\":\"equivalent\""),
            std::string::npos);
}

TEST_F(CliTest, SimCommandPrintsAmplitudes) {
  const std::string a = path("bell.qasm");
  {
    std::ofstream os(a);
    os << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
  }
  const auto sim = runCli("sim " + a);
  EXPECT_EQ(sim.exitCode, 0);
  EXPECT_NE(sim.output.find("|00>"), std::string::npos);
  EXPECT_NE(sim.output.find("|11>"), std::string::npos);
}

TEST_F(CliTest, LintCleanFileExitsZero) {
  const std::string a = path("clean.qasm");
  {
    std::ofstream os(a);
    os << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
  }
  const auto lint = runCli("lint " + a);
  EXPECT_EQ(lint.exitCode, 0) << lint.output;
  EXPECT_NE(lint.output.find("0 error(s)"), std::string::npos);
}

TEST_F(CliTest, LintMalformedFileReportsRulesAndExitsFour) {
  const std::string a = path("bad.qasm");
  {
    std::ofstream os(a);
    os << "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\nrx(1/0) q[1];\n";
  }
  const auto lint = runCli("lint " + a);
  EXPECT_EQ(lint.exitCode, 4);
  EXPECT_NE(lint.output.find("QA002"), std::string::npos);
  EXPECT_NE(lint.output.find("QA004"), std::string::npos);
}

TEST_F(CliTest, LintJsonShape) {
  const std::string a = path("warn.qasm");
  {
    std::ofstream os(a);
    os << "OPENQASM 2.0;\nqreg q[1];\nh q[0];\nh q[0];\n";
  }
  const auto lint = runCli("lint " + a + " --json");
  EXPECT_EQ(lint.exitCode, 0); // warnings do not fail the lint
  EXPECT_EQ(lint.output.front(), '{');
  EXPECT_NE(lint.output.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(lint.output.find("QL001"), std::string::npos);
  EXPECT_NE(lint.output.find("\"errors\":0"), std::string::npos);
}

TEST_F(CliTest, LintPairReportsWidthMismatch) {
  const std::string narrow = path("ln.qasm");
  const std::string wide = path("lw.qasm");
  {
    std::ofstream os(narrow);
    os << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[1];\n";
  }
  {
    std::ofstream os(wide);
    os << "OPENQASM 2.0;\nqreg q[3];\nh q[0];\nh q[1];\nh q[2];\n";
  }
  const auto lint = runCli("lint " + narrow + " " + wide);
  EXPECT_EQ(lint.exitCode, 4);
  EXPECT_NE(lint.output.find("QP001"), std::string::npos);
  // pair-level findings are attributed to both files, not just the first
  EXPECT_NE(lint.output.find(narrow + ", " + wide), std::string::npos);

  const auto json = runCli("lint " + narrow + " " + wide + " --json");
  EXPECT_NE(json.output.find("\"circuit\":\"pair\""), std::string::npos);
}

TEST_F(CliTest, ProfileCommandReportsGateSetAndTier) {
  const std::string ghz = path("ghz.qasm");
  const std::string qft = path("qft.qasm");
  ASSERT_EQ(runCli("gen ghz 3 " + ghz).exitCode, 0);
  ASSERT_EQ(runCli("gen qft 4 " + qft).exitCode, 0);

  const auto single = runCli("profile " + ghz);
  EXPECT_EQ(single.exitCode, 0) << single.output;
  EXPECT_NE(single.output.find("gate set:  clifford"), std::string::npos);

  // an identical Clifford pair strips to nothing: tier "static"
  const auto pair = runCli("profile " + ghz + " " + ghz);
  EXPECT_EQ(pair.exitCode, 0) << pair.output;
  EXPECT_NE(pair.output.find("tier:      static"), std::string::npos);
  EXPECT_NE(pair.output.find("verdict:   identical"), std::string::npos);

  const auto json = runCli("profile " + ghz + " " + qft + " --json");
  EXPECT_EQ(json.exitCode, 0) << json.output;
  EXPECT_TRUE(qsimec::util::isValidJson(json.output)) << json.output;
  EXPECT_NE(json.output.find("\"tier\":"), std::string::npos);
  EXPECT_NE(json.output.find("\"gate_set\":"), std::string::npos);
}

TEST_F(CliTest, CheckReportsStabilizerTierForCliffordPair) {
  const std::string a = path("sg.qasm");
  const std::string b = path("sb.qasm");
  {
    std::ofstream os(a);
    os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
       << "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
  }
  {
    // an inserted x;x pair: Clifford-only, equivalent, but the residual
    // after prefix/suffix stripping is not statically decidable — the
    // stabilizer tier proves it
    std::ofstream os(b);
    os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
       << "h q[0];\ncx q[0],q[1];\nx q[2];\nx q[2];\ncx q[1],q[2];\n";
  }
  const auto check = runCli("check " + a + " " + b + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
  EXPECT_NE(check.output.find("tier:        stabilizer"), std::string::npos);
}

TEST_F(CliTest, CheckOnMalformedFileExitsFour) {
  const std::string bad = path("bad.qasm");
  const std::string ok = path("ok.qasm");
  {
    std::ofstream os(bad);
    os << "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n";
  }
  {
    std::ofstream os(ok);
    os << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n";
  }
  const auto check = runCli("check " + bad + " " + ok);
  EXPECT_EQ(check.exitCode, 4);
  EXPECT_NE(check.output.find("invalid input"), std::string::npos);
}

TEST_F(CliTest, MissingFileIsUsageErrorNotInvalidInput) {
  const auto lint = runCli("lint " + path("nope.qasm"));
  EXPECT_EQ(lint.exitCode, 2);
  const auto check =
      runCli("check " + path("nope.qasm") + " " + path("nope.qasm"));
  EXPECT_EQ(check.exitCode, 2);
}

TEST_F(CliTest, WidthMismatchIsPaddedAutomatically) {
  const std::string narrow = path("n.qasm");
  const std::string wide = path("w.qasm");
  {
    std::ofstream os(narrow);
    os << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n";
  }
  {
    std::ofstream os(wide);
    os << "OPENQASM 2.0;\nqreg q[3];\nh q[0];\n";
  }
  const auto check = runCli("check " + narrow + " " + wide + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
}

TEST_F(CliTest, JsonOutputCarriesMetrics) {
  const std::string a = path("g.qasm");
  ASSERT_EQ(runCli("gen ghz 3 " + a).exitCode, 0);
  // --no-prescreen: ghz vs itself is otherwise decided statically, and
  // this test pins the general flow's metrics rollup
  const auto check =
      runCli("check " + a + " " + a + " --json --no-prescreen --timeout 30");
  EXPECT_EQ(check.exitCode, 0);
  EXPECT_TRUE(qsimec::util::isValidJson(check.output)) << check.output;
  EXPECT_NE(check.output.find("\"metrics\""), std::string::npos);
  EXPECT_NE(check.output.find("\"simulation.runs\""), std::string::npos);
  EXPECT_NE(check.output.find("\"complete.dd.nodes_peak_live\""),
            std::string::npos);
  EXPECT_NE(check.output.find("\"preflight_seconds\""), std::string::npos);
}

TEST_F(CliTest, TraceFlagWritesChromeTraceFile) {
  const std::string a = path("g.qasm");
  const std::string trace = path("trace.json");
  ASSERT_EQ(runCli("gen ghz 3 " + a).exitCode, 0);
  const auto check = runCli("check " + a + " " + a + " --trace " + trace +
                            " --no-prescreen --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
  EXPECT_NE(check.output.find("trace:"), std::string::npos);

  ASSERT_TRUE(fs::exists(trace));
  std::ifstream is(trace);
  const std::string content((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
  EXPECT_TRUE(qsimec::util::isValidJson(content)) << content;
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"flow\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"checker.simulation\""),
            std::string::npos);
  EXPECT_NE(content.find("\"name\":\"sim.stimulus\""), std::string::npos);
}

TEST_F(CliTest, MetricsFlagPrintsMetricsJson) {
  const std::string a = path("g.qasm");
  ASSERT_EQ(runCli("gen ghz 3 " + a).exitCode, 0);
  const auto check = runCli("check " + a + " " + a + " --metrics --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
  const std::size_t at = check.output.find("metrics:     ");
  ASSERT_NE(at, std::string::npos);
  std::string json = check.output.substr(at + 13);
  if (const std::size_t newline = json.find('\n');
      newline != std::string::npos) {
    json.resize(newline);
  }
  EXPECT_TRUE(qsimec::util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"total.seconds\""), std::string::npos);
}

TEST_F(CliTest, JournalFlagWritesJsonlFile) {
  const std::string a = path("g.qasm");
  const std::string journal = path("run.jsonl");
  ASSERT_EQ(runCli("gen ghz 3 " + a).exitCode, 0);
  const auto check =
      runCli("check " + a + " " + a + " --journal " + journal + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
  EXPECT_NE(check.output.find("journal:"), std::string::npos);

  ASSERT_TRUE(fs::exists(journal));
  std::ifstream is(journal);
  std::string line;
  std::size_t lines = 0;
  bool sawVerdict = false;
  while (std::getline(is, line)) {
    EXPECT_TRUE(qsimec::util::isValidJson(line)) << line;
    sawVerdict = sawVerdict ||
                 line.find("\"event\":\"flow.verdict\"") != std::string::npos;
    ++lines;
  }
  EXPECT_GT(lines, 0U);
  EXPECT_TRUE(sawVerdict);
}

TEST_F(CliTest, SampleFlagWritesCsvAndCountersLandInTrace) {
  const std::string a = path("g.qasm");
  const std::string csv = path("samples.csv");
  const std::string trace = path("trace.json");
  ASSERT_EQ(runCli("gen qft 6 " + a).exitCode, 0);
  const auto check = runCli("check " + a + " " + a + " --sample " + csv +
                            " --trace " + trace + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
  EXPECT_NE(check.output.find("samples:"), std::string::npos);

  ASSERT_TRUE(fs::exists(csv));
  std::ifstream is(csv);
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header, "ts_micros,probe,value");
  std::string row;
  bool sawRss = false;
  while (std::getline(is, row)) {
    sawRss = sawRss || row.find(",process.rss_bytes,") != std::string::npos;
  }
  EXPECT_TRUE(sawRss);

  // the sampler mirrors its samples into the Chrome trace as counter events
  ASSERT_TRUE(fs::exists(trace));
  std::ifstream ts(trace);
  const std::string content((std::istreambuf_iterator<char>(ts)),
                            std::istreambuf_iterator<char>());
  EXPECT_TRUE(qsimec::util::isValidJson(content));
  EXPECT_NE(content.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"dd.nodes_live\""), std::string::npos);
}

TEST_F(CliTest, BenchDiffGatesOnRegressionsAndPassesSelfComparison) {
  const auto writeReport = [this](const std::string& name,
                                  const std::string& outcome, double seconds,
                                  std::uint64_t addOps) {
    const std::string file = path(name);
    std::ofstream os(file);
    os << R"({"schema":"qsimec-bench-v1","harness":"flow_baseline",)"
       << R"("timeout_seconds":10,"simulations":10,"seed":42,"threads":1,)"
       << R"("paper_scale":false,"results":[{"name":"Grover 5","qubits":9,)"
       << R"("gates_g":100,"gates_g_prime":90,"outcome":")" << outcome
       << R"(","metrics":{"counters":{"complete.dd.add_ops":)" << addOps
       << R"(},"gauges":{"total.seconds":)" << seconds << "}}}]}";
    return file;
  };
  const std::string base = writeReport("base.json", "equivalent", 0.5, 1000);
  const std::string flipped =
      writeReport("flipped.json", "not equivalent", 0.5, 1000);
  const std::string slow = writeReport("slow.json", "equivalent", 1.0, 1000);

  const auto same = runCli("bench-diff " + base + " " + base);
  EXPECT_EQ(same.exitCode, 0) << same.output;
  EXPECT_NE(same.output.find("bench-diff: OK"), std::string::npos);

  const auto flip = runCli("bench-diff " + base + " " + flipped);
  EXPECT_EQ(flip.exitCode, 1) << flip.output;
  EXPECT_NE(flip.output.find("verdict flipped"), std::string::npos);
  EXPECT_NE(flip.output.find("bench-diff: REGRESSION"), std::string::npos);

  const auto slower = runCli("bench-diff " + base + " " + slow);
  EXPECT_EQ(slower.exitCode, 1) << slower.output;

  // ...but the same slowdown passes under a wide-enough tolerance
  const auto tolerated =
      runCli("bench-diff " + base + " " + slow + " --tolerance 1.5");
  EXPECT_EQ(tolerated.exitCode, 0) << tolerated.output;

  const auto missing = runCli("bench-diff " + base + " " + path("nope.json"));
  EXPECT_EQ(missing.exitCode, 2) << missing.output;
}

TEST_F(CliTest, BatchChecksManifestAndMirrorsCheckExitCodes) {
  const std::string a = path("a.qasm");
  const std::string b = path("b.qasm");
  const std::string add = path("add.real");
  const std::string inc = path("inc.real");
  ASSERT_EQ(runCli("gen qft 3 " + a).exitCode, 0);
  ASSERT_EQ(runCli("gen qft-alt 3 " + b).exitCode, 0);
  ASSERT_EQ(runCli("gen adder 4 " + add).exitCode, 0);
  ASSERT_EQ(runCli("gen inc 4 " + inc).exitCode, 0);

  const std::string equivalentOnly = path("eq.jsonl");
  {
    std::ofstream os(equivalentOnly);
    os << R"({"g": ")" << a << R"(", "gp": ")" << b << "\"}\n"
       << R"({"g": ")" << add << R"(", "gp": ")" << add << "\"}\n";
  }
  const auto eq = runCli("batch " + equivalentOnly + " --timeout 60");
  EXPECT_EQ(eq.exitCode, 0) << eq.output;
  EXPECT_NE(eq.output.find("pairs: 2"), std::string::npos) << eq.output;

  // one non-equivalent pair flips the batch exit code to 1, like check's
  const std::string mixed = path("mixed.jsonl");
  {
    std::ofstream os(mixed);
    os << R"({"g": ")" << a << R"(", "gp": ")" << b << "\"}\n"
       << R"({"g": ")" << add << R"(", "gp": ")" << inc << "\"}\n";
  }
  const auto ne = runCli("batch " + mixed + " --timeout 60 --json");
  EXPECT_EQ(ne.exitCode, 1) << ne.output;
  // every line of --json output is a valid, schema-tagged JSON object
  std::istringstream lines(ne.output);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(qsimec::util::isValidJson(line)) << line;
    EXPECT_NE(line.find("\"schema\":\"qsimec-batch-v1\""), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 3U); // two pairs + summary

  const auto missing = runCli("batch " + path("nope.jsonl"));
  EXPECT_EQ(missing.exitCode, 2) << missing.output;
}

TEST_F(CliTest, BatchWarmCacheRerunAnswersFromCache) {
  const std::string a = path("wa.qasm");
  const std::string b = path("wb.qasm");
  ASSERT_EQ(runCli("gen qft 3 " + a).exitCode, 0);
  ASSERT_EQ(runCli("gen qft-alt 3 " + b).exitCode, 0);
  const std::string manifest = path("warm.jsonl");
  {
    std::ofstream os(manifest);
    os << R"({"g": ")" << a << R"(", "gp": ")" << b << "\"}\n"
       << R"({"g": ")" << a << R"(", "gp": ")" << a << "\"}\n";
  }
  const std::string cache = path("cache.jsonl");
  const std::string cmd =
      "batch " + manifest + " --cache " + cache + " --timeout 60 --json";

  const auto cold = runCli(cmd);
  EXPECT_EQ(cold.exitCode, 0) << cold.output;
  EXPECT_NE(cold.output.find("\"cache_hits\":0"), std::string::npos);
  EXPECT_NE(cold.output.find("\"cache_stores\":2"), std::string::npos);

  const auto warm = runCli(cmd);
  EXPECT_EQ(warm.exitCode, 0) << warm.output;
  EXPECT_NE(warm.output.find("\"cache_hits\":2"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("\"cache_stores\":0"), std::string::npos);

  // the verdict sequence is identical whether computed or replayed
  const auto verdicts = [](const std::string& s) {
    std::vector<std::string> found;
    const std::string needle = "\"equivalence\":\"";
    for (std::size_t at = s.find(needle); at != std::string::npos;
         at = s.find(needle, at + 1)) {
      const std::size_t begin = at + needle.size();
      found.push_back(s.substr(begin, s.find('"', begin) - begin));
    }
    return found;
  };
  EXPECT_EQ(verdicts(cold.output), verdicts(warm.output));
}

// --- .tfc support ---------------------------------------------------------

TEST_F(CliTest, TfcLintProfileAndCheckPipeline) {
  const std::string tfc = path("mct.tfc");
  {
    std::ofstream os(tfc);
    os << ".v a,b,c\n.i a,b,c\nBEGIN\nt1 a\nt2 a,b\nt3 a,b,c\nEND\n";
  }
  const auto lint = runCli("lint " + tfc);
  EXPECT_EQ(lint.exitCode, 0) << lint.output;
  EXPECT_NE(lint.output.find("0 error(s)"), std::string::npos);

  const auto profile = runCli("profile " + tfc);
  EXPECT_EQ(profile.exitCode, 0) << profile.output;
  EXPECT_NE(profile.output.find("gate set:"), std::string::npos);

  // convert .tfc -> .real -> back, then check the round-trip is equivalent
  const std::string real = path("mct.real");
  ASSERT_EQ(runCli("convert " + tfc + " " + real).exitCode, 0);
  const auto check = runCli("check " + tfc + " " + real + " --timeout 30");
  EXPECT_EQ(check.exitCode, 0) << check.output;
}

TEST_F(CliTest, TfcParseErrorsExitFour) {
  const std::string truncated = path("truncated.tfc");
  {
    std::ofstream os(truncated);
    os << ".v a,b\nBEGIN\nt2 a,b\n"; // no END
  }
  const auto lint = runCli("lint " + truncated);
  EXPECT_EQ(lint.exitCode, 4) << lint.output;
  EXPECT_NE(lint.output.find("invalid input"), std::string::npos);
  EXPECT_EQ(runCli("profile " + truncated).exitCode, 4);

  const std::string overlap = path("overlap.tfc");
  {
    std::ofstream os(overlap);
    os << ".v a,b\nBEGIN\nt2 a,a\nEND\n"; // control == target
  }
  // lint admits the malformed gate and reports a structured error
  const auto overlapLint = runCli("lint " + overlap);
  EXPECT_EQ(overlapLint.exitCode, 4) << overlapLint.output;
}

// --- corpus + fuzz --------------------------------------------------------

TEST_F(CliTest, GenCorpusEmitsBatchableManifest) {
  const std::string dir = path("corpus");
  const auto gen = runCli("gen corpus " + dir + " --seed 1");
  ASSERT_EQ(gen.exitCode, 0) << gen.output;
  ASSERT_TRUE(fs::exists(dir + "/manifest.jsonl"));
  ASSERT_TRUE(fs::exists(dir + "/corpus.json"));

  // the corpus deliberately contains error-injected pairs, so batch exits 1
  const auto batch =
      runCli("batch " + dir + "/manifest.jsonl --timeout 60 --threads 1");
  EXPECT_EQ(batch.exitCode, 1) << batch.output;
  EXPECT_NE(batch.output.find("not equivalent"), std::string::npos);
}

TEST_F(CliTest, FuzzSmokeIsDeterministicAndClean) {
  const std::string cmd = "fuzz --seed 11 --pairs 2 --max-qubits 4";
  const auto first = runCli(cmd);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_NE(first.output.find("disagreements:     0"), std::string::npos);
  const auto second = runCli(cmd);
  EXPECT_EQ(second.output, first.output); // byte-identical rerun
}

TEST_F(CliTest, FuzzReplaysCommittedRegressionCorpus) {
  const std::string corpus =
      std::string(QSIMEC_TESTDATA_DIR) + "/fuzz/corpus.jsonl";
  const auto replay = runCli("fuzz --replay " + corpus);
  EXPECT_EQ(replay.exitCode, 0) << replay.output;
  EXPECT_NE(replay.output.find("replay clean"), std::string::npos);
}
