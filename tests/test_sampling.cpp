// DD measurement/sampling tests: subtree norms, single-qubit marginals, and
// full-outcome sampling statistics, cross-checked against dense amplitudes.

#include "gen/random_circuits.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense_simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace qsimec;

TEST(Sampling, BasisStateIsDeterministic) {
  dd::Package pkg(5);
  const auto state = pkg.makeBasisState(0b10110);
  std::mt19937_64 rng(1);
  for (int shot = 0; shot < 10; ++shot) {
    EXPECT_EQ(pkg.sampleOutcome(state, rng), 0b10110U);
  }
  EXPECT_EQ(pkg.probabilityOfOne(state, 1), 1.0);
  EXPECT_EQ(pkg.probabilityOfOne(state, 0), 0.0);
  EXPECT_EQ(pkg.probabilityOfOne(state, 4), 1.0);
}

TEST(Sampling, BellStateMarginals) {
  dd::Package pkg(2);
  ir::QuantumComputation qc(2);
  qc.h(1);
  qc.cx(1, 0);
  const auto state = sim::simulate(qc, pkg.makeZeroState(), pkg);
  EXPECT_NEAR(pkg.probabilityOfOne(state, 0), 0.5, 1e-12);
  EXPECT_NEAR(pkg.probabilityOfOne(state, 1), 0.5, 1e-12);

  // samples must be perfectly correlated: 00 or 11 only
  std::mt19937_64 rng(3);
  for (int shot = 0; shot < 50; ++shot) {
    const auto outcome = pkg.sampleOutcome(state, rng);
    EXPECT_TRUE(outcome == 0b00 || outcome == 0b11) << outcome;
  }
}

TEST(Sampling, MarginalsMatchDenseOnRandomCircuits) {
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    const auto qc = gen::randomCircuit(5, 40, seed);
    dd::Package pkg(5);
    const auto state = sim::simulate(qc, pkg.makeZeroState(), pkg);
    const auto dense = sim::DenseSimulator::simulate(qc, 0);
    for (std::size_t q = 0; q < 5; ++q) {
      double expected = 0;
      for (std::size_t i = 0; i < dense.size(); ++i) {
        if ((i >> q) & 1U) {
          expected += std::norm(dense[i]);
        }
      }
      EXPECT_NEAR(pkg.probabilityOfOne(state, static_cast<dd::Var>(q)),
                  expected, 1e-9)
          << "seed " << seed << " qubit " << q;
    }
  }
}

TEST(Sampling, HistogramMatchesDistribution) {
  // GHZ-like state: outcomes concentrated on |000> and |111>
  dd::Package pkg(3);
  ir::QuantumComputation qc(3);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  const auto state = sim::simulate(qc, pkg.makeZeroState(), pkg);

  std::mt19937_64 rng(17);
  std::map<std::uint64_t, int> histogram;
  const int shots = 600;
  for (int shot = 0; shot < shots; ++shot) {
    ++histogram[pkg.sampleOutcome(state, rng)];
  }
  ASSERT_EQ(histogram.size(), 2U);
  EXPECT_NEAR(static_cast<double>(histogram[0b000]) / shots, 0.5, 0.08);
  EXPECT_NEAR(static_cast<double>(histogram[0b111]) / shots, 0.5, 0.08);
}

TEST(Sampling, BiasedSuperposition) {
  // RY(theta)|0> has P(1) = sin^2(theta/2)
  const double theta = 1.0;
  dd::Package pkg(1);
  ir::QuantumComputation qc(1);
  qc.ry(theta, 0);
  const auto state = sim::simulate(qc, pkg.makeZeroState(), pkg);
  const double expected = std::sin(theta / 2) * std::sin(theta / 2);
  EXPECT_NEAR(pkg.probabilityOfOne(state, 0), expected, 1e-12);

  std::mt19937_64 rng(23);
  int ones = 0;
  const int shots = 2000;
  for (int shot = 0; shot < shots; ++shot) {
    ones += static_cast<int>(pkg.sampleOutcome(state, rng));
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, expected, 0.05);
}

TEST(Sampling, InvalidArguments) {
  dd::Package pkg(2);
  const auto state = pkg.makeZeroState();
  EXPECT_THROW((void)pkg.probabilityOfOne(state, 5), std::invalid_argument);
  std::mt19937_64 rng(1);
  EXPECT_THROW((void)pkg.sampleOutcome(pkg.vZero(), rng),
               std::invalid_argument);
}
