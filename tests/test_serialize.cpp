// JSON serialization tests: structure, escaping, and value fidelity.

#include "ec/serialize.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

using namespace qsimec;

TEST(JsonWriter, ObjectsAndFields) {
  util::JsonWriter json;
  json.beginObject()
      .field("name", "qsimec")
      .field("count", 42)
      .field("ratio", 0.5)
      .field("flag", true)
      .rawField("nested", "null")
      .endObject();
  EXPECT_EQ(json.str(), "{\"name\":\"qsimec\",\"count\":42,\"ratio\":0.5,"
                        "\"flag\":true,\"nested\":null}");
}

TEST(JsonWriter, EscapesStrings) {
  util::JsonWriter json;
  json.beginObject().field("s", "a\"b\\c\nd\te").endObject();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  util::JsonWriter json;
  json.beginObject()
      .field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .endObject();
  EXPECT_EQ(json.str(), "{\"inf\":null,\"nan\":null}");
}

TEST(Serialize, CheckResultRoundTripsFields) {
  ec::CheckResult result;
  result.equivalence = ec::Equivalence::NotEquivalent;
  result.seconds = 1.5;
  result.simulations = 3;
  result.counterexample = ec::Counterexample{7, 0.25};
  const std::string json = toJson(result);
  EXPECT_NE(json.find("\"equivalence\":\"not equivalent\""), std::string::npos);
  EXPECT_NE(json.find("\"simulations\":3"), std::string::npos);
  EXPECT_NE(json.find("\"input\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fidelity\":0.25"), std::string::npos);
}

TEST(Serialize, FlowResultWithoutCounterexample) {
  ec::FlowResult result;
  result.equivalence = ec::Equivalence::ProbablyEquivalent;
  result.simulations = 10;
  const std::string json = toJson(result);
  EXPECT_NE(json.find("\"equivalence\":\"probably equivalent\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counterexample\":null"), std::string::npos);
}
