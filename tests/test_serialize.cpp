// JSON serialization tests: structure, escaping, and value fidelity.

#include "ec/serialize.hpp"
#include "util/json.hpp"
#include "util/json_lint.hpp"

#include <gtest/gtest.h>

using namespace qsimec;

TEST(JsonWriter, ObjectsAndFields) {
  util::JsonWriter json;
  json.beginObject()
      .field("name", "qsimec")
      .field("count", 42)
      .field("ratio", 0.5)
      .field("flag", true)
      .rawField("nested", "null")
      .endObject();
  EXPECT_EQ(json.str(), "{\"name\":\"qsimec\",\"count\":42,\"ratio\":0.5,"
                        "\"flag\":true,\"nested\":null}");
}

TEST(JsonWriter, EscapesStrings) {
  util::JsonWriter json;
  json.beginObject().field("s", "a\"b\\c\nd\te").endObject();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  util::JsonWriter json;
  json.beginObject()
      .field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .endObject();
  EXPECT_EQ(json.str(), "{\"inf\":null,\"nan\":null}");
}

TEST(Serialize, CheckResultRoundTripsFields) {
  ec::CheckResult result;
  result.equivalence = ec::Equivalence::NotEquivalent;
  result.seconds = 1.5;
  result.simulations = 3;
  result.counterexample = ec::Counterexample{7, 0.25};
  const std::string json = toJson(result);
  EXPECT_NE(json.find("\"equivalence\":\"not equivalent\""), std::string::npos);
  EXPECT_NE(json.find("\"simulations\":3"), std::string::npos);
  EXPECT_NE(json.find("\"input\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fidelity\":0.25"), std::string::npos);
}

TEST(Serialize, FlowResultWithoutCounterexample) {
  ec::FlowResult result;
  result.equivalence = ec::Equivalence::ProbablyEquivalent;
  result.simulations = 10;
  const std::string json = toJson(result);
  EXPECT_NE(json.find("\"equivalence\":\"probably equivalent\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counterexample\":null"), std::string::npos);
}

TEST(Serialize, CheckResultCarriesDDSummary) {
  ec::CheckResult result;
  result.ddStats.vNodesPeakLive = 40;
  result.ddStats.mNodesPeakLive = 2;
  result.ddStats.gcRuns = 3;
  const std::string json = toJson(result);
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"dd\":{"), std::string::npos);
  EXPECT_NE(json.find("\"peak_nodes_live\":42"), std::string::npos);
  EXPECT_NE(json.find("\"gc_runs\":3"), std::string::npos);
}

TEST(Serialize, FlowResultCarriesMetricsAndPreflight) {
  ec::FlowResult result;
  result.preflightSeconds = 0.5;
  result.simulationSeconds = 1.0;
  result.metrics.counters["simulation.runs"] = 10;
  result.metrics.gauges["total.seconds"] = 1.5;
  const std::string json = toJson(result);
  EXPECT_TRUE(util::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"preflight_seconds\":0.5"), std::string::npos);
  // totalSeconds() folds the preflight stage in
  EXPECT_NE(json.find("\"total_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"simulation.runs\":10"), std::string::npos);
}
