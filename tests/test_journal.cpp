// Journal and Sampler tests: every committed line is valid JSON with the
// deterministic header/key order, the null path records nothing, the flow
// and the DD package emit the documented events, and the sampler's
// time-series/CSV/counter-mirror exports hold together.

#include "dd/package.hpp"
#include "ec/flow.hpp"
#include "gen/qft.hpp"
#include "obs/context.hpp"
#include "obs/journal.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "sim/dd_simulator.hpp"
#include "util/json_lint.hpp"
#include "util/json_parse.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

using namespace qsimec;

namespace {

ir::QuantumComputation paperCircuitG() {
  ir::QuantumComputation qc(3, "fig1b");
  qc.h(1);
  qc.cx(1, 0);
  qc.h(2);
  qc.h(1);
  qc.cx(2, 1);
  qc.h(2);
  qc.cx(2, 1);
  qc.cx(1, 0);
  return qc;
}

ir::QuantumComputation paperCircuitBroken() {
  ir::QuantumComputation qc = paperCircuitG();
  qc.x(0);
  return qc;
}

} // namespace

TEST(Journal, LinesAreValidJsonWithDeterministicKeyOrder) {
  obs::Journal journal;
  journal.event(obs::JournalLevel::Info, "unit.test")
      .str("name", "qft")
      .num("qubits", std::uint64_t{8})
      .num("fidelity", 0.5)
      .flag("ok", true);
  journal.event(obs::JournalLevel::Warn, "esc\"api\ng").str("k", "a\\b\tc");

  const std::vector<std::string> lines = journal.lines();
  ASSERT_EQ(lines.size(), 2U);
  for (const std::string& line : lines) {
    EXPECT_TRUE(util::isValidJson(line)) << line;
  }

  // fixed header first, then caller fields in call order
  const util::JsonValue first = util::parseJson(lines[0]);
  const auto& members = first.members();
  ASSERT_EQ(members.size(), 7U);
  EXPECT_EQ(members[0].first, "ts_micros");
  EXPECT_EQ(members[1].first, "level");
  EXPECT_EQ(members[2].first, "event");
  EXPECT_EQ(members[3].first, "name");
  EXPECT_EQ(members[4].first, "qubits");
  EXPECT_EQ(members[5].first, "fidelity");
  EXPECT_EQ(members[6].first, "ok");
  EXPECT_EQ(first.at("level").asString(), "info");
  EXPECT_EQ(first.at("event").asString(), "unit.test");
  EXPECT_EQ(first.at("qubits").asUint(), 8U);
  EXPECT_TRUE(first.at("ok").asBool());
  EXPECT_GE(first.at("ts_micros").asNumber(), 0.0);

  // escapes round-trip through the parser
  const util::JsonValue second = util::parseJson(lines[1]);
  EXPECT_EQ(second.at("event").asString(), "esc\"api\ng");
  EXPECT_EQ(second.at("k").asString(), "a\\b\tc");
}

TEST(Journal, TimestampsAreMonotonic) {
  obs::Journal journal;
  for (int i = 0; i < 5; ++i) {
    journal.event(obs::JournalLevel::Debug, "tick")
        .num("i", static_cast<std::uint64_t>(i));
  }
  const std::vector<std::string> lines = journal.lines();
  double previous = -1.0;
  for (const std::string& line : lines) {
    const double ts = util::parseJson(line).at("ts_micros").asNumber();
    EXPECT_GE(ts, previous);
    previous = ts;
  }
}

TEST(Journal, NullJournalRecordsNothingAndIsSafe) {
  obs::JournalEvent event(nullptr, obs::JournalLevel::Error, "noop");
  event.str("s", "v").num("d", 1.5).num("u", std::uint64_t{2}).flag("b", true);

  const obs::Context context;
  context.log(obs::JournalLevel::Info, "also.noop").num("k", 1.0);
  EXPECT_FALSE(context.active());
}

TEST(Journal, StreamMirrorsCommittedLines) {
  std::ostringstream sink;
  obs::Journal journal;
  journal.streamTo(&sink);
  (void)journal.event(obs::JournalLevel::Info, "one");
  (void)journal.event(obs::JournalLevel::Info, "two");
  journal.streamTo(nullptr);
  // after the detach: recorded but not mirrored
  (void)journal.event(obs::JournalLevel::Info, "three");

  EXPECT_EQ(journal.lineCount(), 3U);
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t streamed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(util::isValidJson(line)) << line;
    ++streamed;
  }
  EXPECT_EQ(streamed, 2U);
  EXPECT_EQ(journal.dump(),
            journal.lines()[0] + "\n" + journal.lines()[1] + "\n" +
                journal.lines()[2] + "\n");
}

TEST(Journal, ConcurrentCommitsStayLineAtomic) {
  obs::Journal journal;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&journal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          journal.event(obs::JournalLevel::Info, "worker")
              .num("thread", static_cast<std::uint64_t>(t))
              .num("i", static_cast<std::uint64_t>(i));
        }
      });
    }
  }
  const std::vector<std::string> lines = journal.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    EXPECT_TRUE(util::isValidJson(line)) << line;
  }
}

TEST(Journal, FlowEmitsStageAndVerdictEvents) {
  obs::Journal journal;
  obs::Context context;
  context.journal = &journal;

  // pin the general flow's journal stream — Clifford-only pairs would
  // otherwise be routed to the stabilizer tier and emit no sim.stimulus
  ec::FlowConfiguration config;
  config.prescreen.enabled = false;
  const ec::EquivalenceCheckingFlow flow(config);
  const ec::FlowResult result =
      flow.run(paperCircuitG(), paperCircuitBroken(), context);
  ASSERT_EQ(result.equivalence, ec::Equivalence::NotEquivalent);

  bool sawStart = false;
  bool sawSimulationStage = false;
  bool sawVerdict = false;
  std::size_t stimulusLines = 0;
  bool sawMismatch = false;
  for (const std::string& line : journal.lines()) {
    ASSERT_TRUE(util::isValidJson(line)) << line;
    const util::JsonValue v = util::parseJson(line);
    const std::string& event = v.at("event").asString();
    sawStart = sawStart || event == "flow.start";
    if (event == "flow.stage") {
      sawSimulationStage =
          sawSimulationStage || v.at("stage").asString() == "simulation";
    }
    if (event == "sim.stimulus") {
      ++stimulusLines;
      sawMismatch = sawMismatch || v.at("mismatch").asBool();
    }
    if (event == "flow.verdict") {
      sawVerdict = true;
      EXPECT_EQ(v.at("outcome").asString(), "not equivalent");
    }
  }
  EXPECT_TRUE(sawStart);
  EXPECT_TRUE(sawSimulationStage);
  EXPECT_TRUE(sawVerdict);
  EXPECT_GT(stimulusLines, 0U);
  EXPECT_TRUE(sawMismatch);
}

TEST(Journal, FlowEmitsTierEvent) {
  obs::Journal journal;
  obs::Context context;
  context.journal = &journal;

  const ec::EquivalenceCheckingFlow flow;
  const ec::FlowResult result =
      flow.run(paperCircuitG(), paperCircuitG(), context);
  ASSERT_EQ(result.equivalence, ec::Equivalence::Equivalent);
  ASSERT_EQ(result.tier, analysis::TierHint::Static);

  bool sawTier = false;
  for (const std::string& line : journal.lines()) {
    ASSERT_TRUE(util::isValidJson(line)) << line;
    const util::JsonValue v = util::parseJson(line);
    if (v.at("event").asString() != "flow.tier") {
      continue;
    }
    sawTier = true;
    EXPECT_EQ(v.at("tier").asString(), "static");
    EXPECT_EQ(v.at("gate_set").asString(), "clifford");
    EXPECT_EQ(v.at("verdict").asString(), "identical");
  }
  EXPECT_TRUE(sawTier);
}

TEST(Journal, PackageGcEmitsEvent) {
  obs::Journal journal;
  dd::Package pkg(3);
  pkg.setJournal(&journal);
  const ir::QuantumComputation qc = paperCircuitG();
  const auto out = sim::simulate(qc, pkg.makeBasisState(0), pkg);
  ASSERT_NE(out.p, nullptr);
  pkg.garbageCollect(/*force=*/true);
  pkg.setJournal(nullptr);

  bool sawGc = false;
  for (const std::string& line : journal.lines()) {
    ASSERT_TRUE(util::isValidJson(line)) << line;
    const util::JsonValue v = util::parseJson(line);
    if (v.at("event").asString() == "dd.gc") {
      sawGc = true;
      EXPECT_GE(v.at("pause_seconds").asNumber(), 0.0);
    }
  }
  EXPECT_TRUE(sawGc);
}

TEST(Sampler, PollsProbesIntoSeriesAndCsv) {
  obs::Sampler::Options options;
  options.period = std::chrono::milliseconds(1);
  obs::Sampler sampler(options);
  std::atomic<double> value{1.0};
  sampler.addProbe("test.value",
                   [&value] { return value.load(std::memory_order_relaxed); });
  sampler.start();
  EXPECT_TRUE(sampler.running());
  EXPECT_THROW(sampler.addProbe("late", [] { return 0.0; }), std::logic_error);
  value.store(2.0, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  ASSERT_EQ(sampler.series().size(), 1U);
  const auto& samples = sampler.series()[0].samples;
  ASSERT_GE(samples.size(), 2U); // at least first + final sample
  EXPECT_EQ(sampler.sampleCount(), samples.size());
  double previousTs = -1.0;
  for (const auto& sample : samples) {
    EXPECT_GE(sample.tsMicros, previousTs);
    previousTs = sample.tsMicros;
    EXPECT_TRUE(sample.value == 1.0 || sample.value == 2.0);
  }
  EXPECT_EQ(samples.back().value, 2.0);

  const std::string csv = sampler.toCsv();
  EXPECT_EQ(csv.rfind("ts_micros,probe,value\n", 0), 0U);
  std::istringstream rows(csv);
  std::string row;
  std::size_t dataRows = 0;
  std::getline(rows, row); // header
  while (std::getline(rows, row)) {
    EXPECT_NE(row.find(",test.value,"), std::string::npos) << row;
    ++dataRows;
  }
  EXPECT_EQ(dataRows, samples.size());
}

TEST(Sampler, MirrorsSamplesAsTracerCounterEvents) {
  obs::Tracer tracer;
  obs::Sampler::Options options;
  options.period = std::chrono::milliseconds(1);
  obs::Sampler sampler(options);
  sampler.addProbe("mirrored", [] { return 42.0; });
  sampler.attachTracer(&tracer);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();

  ASSERT_FALSE(tracer.counterEvents().empty());
  EXPECT_EQ(tracer.counterEvents().size(), sampler.sampleCount());
  for (const obs::CounterEvent& event : tracer.counterEvents()) {
    EXPECT_EQ(event.name, "mirrored");
    EXPECT_EQ(event.value, 42.0);
  }
  EXPECT_TRUE(util::isValidJson(tracer.toChromeTraceJson()));
}

TEST(Sampler, LiveGaugesAreFedByThePackage) {
  obs::LiveGauges gauges;
  dd::Package pkg(8);
  pkg.setLiveGauges(&gauges);
  const ir::QuantumComputation qc = gen::qft(8);
  const auto out = sim::simulate(qc, pkg.makeBasisState(1), pkg);
  ASSERT_NE(out.p, nullptr);
  pkg.garbageCollect(/*force=*/true); // publishes unconditionally
  pkg.setLiveGauges(nullptr);

  // after a forced GC the slots reflect the package's own stats
  const dd::PackageStats stats = pkg.stats();
  EXPECT_DOUBLE_EQ(gauges.ddNodesLive.load(),
                   static_cast<double>(stats.vNodesLive + stats.mNodesLive));
  EXPECT_GT(gauges.ddUniqueFill.load(), 0.0);
  EXPECT_LE(gauges.ddUniqueFill.load(), 1.0);
  EXPECT_GE(gauges.ddUniqueHitRate.load(), 0.0);
  EXPECT_LE(gauges.ddUniqueHitRate.load(), 1.0);
}

TEST(Sampler, ProcessRssIsPositiveOnLinux) {
#ifdef __linux__
  EXPECT_GT(obs::processRssBytes(), 0.0);
#else
  EXPECT_GE(obs::processRssBytes(), 0.0);
#endif
}
